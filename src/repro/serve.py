"""Analysis as a service: a long-lived RunSpec execution daemon.

``repro serve`` turns the spec engine into a shared resource.  Clients
POST :class:`~repro.spec.RunSpec` JSON to a versioned HTTP/1.1 wire API
and the daemon executes each distinct spec exactly once -- identical
submissions, whether in flight or already completed, dedupe by
``spec.digest()`` and share one result.  All runs execute through a
single long-lived :class:`~repro.api.EngineSession`: one warm result
cache, one crash-safe journal, one pool of warm worker processes.

The server is dependency-free: the HTTP layer is a small hand-rolled
parser over :mod:`asyncio` streams (stdlib only), good for the subset
of HTTP/1.1 the wire API needs.

Wire API (all under ``/v1``; see ``docs/serving.md``):

``POST /v1/runs``
    Body is RunSpec JSON.  201 + ``{"id", "status"}`` on first
    submission; 200 + the existing id when the spec dedupes onto an
    in-flight or completed run; 400 with an ``error/v1`` body on a
    malformed spec; 429 with ``admission.*`` codes when the client hit
    its in-flight limit or the global queue is full.
``GET /v1/runs/{id}``
    Status document; once finished it embeds the run's untouched
    ``result/v1`` envelope under ``"result"``.
``GET /v1/runs/{id}/events``
    ND-JSON stream of ``event/v1`` documents: the run's history so far
    replayed, then live events until the terminal ``done``/``failed``.
``GET /v1/healthz`` / ``GET /v1/metrics``
    Liveness and the server's own metrics registry (queue depth, dedup
    hits, per-client counters).

Scheduling is FIFO per client with round-robin across clients, so one
chatty client cannot starve the rest.  Specs execute one at a time on
a dedicated executor thread (the engine's metrics/tracing registries
are process-global); intra-run parallelism comes from the session's
worker pool.  SIGTERM drains: admission closes, accepted runs finish,
the journal and pool shut down cleanly, and the process exits 0 --
resubmitting after a restart dedupes onto the journaled results.
"""

from __future__ import annotations

import argparse
import asyncio
import functools
import json
import signal
import sys
import threading
import uuid
from collections import OrderedDict, deque
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Tuple

from repro.api import EngineSession, run_spec
from repro.errors import AdmissionError, ReproError, SpecError
from repro.obs.metrics import Metrics
from repro.spec import EngineOptions, RunSpec

#: Schema tag of the server's ND-JSON progress events.
EVENT_SCHEMA = "event/v1"

#: Default journal the serve engine checkpoints into (resume=True, so
#: a restarted server replays completed experiments instead of
#: re-simulating them).
DEFAULT_SERVE_JOURNAL = "serve_journal.jsonl"

#: Fallback client identity when a request carries no X-Repro-Client
#: header and the peer address is unavailable.
ANONYMOUS_CLIENT = "anonymous"

_MAX_BODY_BYTES = 8 * 1024 * 1024
_MAX_HEADER_BYTES = 64 * 1024


class RunState:
    """One deduped run: its spec, lifecycle, events, and final envelope."""

    __slots__ = (
        "id",
        "spec",
        "client",
        "status",
        "events",
        "result",
        "error",
        "changed",
    )

    def __init__(self, run_id: str, spec: RunSpec, client: str) -> None:
        self.id = run_id
        self.spec = spec
        self.client = client
        #: queued -> running -> done | failed
        self.status = "queued"
        self.events: List[Dict[str, Any]] = []
        self.result: Optional[Dict[str, Any]] = None
        self.error: Optional[Dict[str, Any]] = None
        self.changed: "asyncio.Event" = asyncio.Event()

    @property
    def finished(self) -> bool:
        return self.status in ("done", "failed")

    def add_event(self, kind: str, **fields: Any) -> Dict[str, Any]:
        event = {
            "schema": EVENT_SCHEMA,
            "run": self.id,
            "seq": len(self.events),
            "type": kind,
        }
        event.update(fields)
        self.events.append(event)
        self.changed.set()
        self.changed = asyncio.Event()
        return event

    def status_doc(self, served_by: Optional[str]) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "id": self.id,
            "status": self.status,
            "served_by": served_by,
            "events": len(self.events),
            "result": self.result,
        }
        if self.error is not None:
            doc["error"] = self.error
        return doc


class AnalysisServer:
    """The asyncio daemon behind ``repro serve``.

    Args:
        options: Engine options every served run executes under; the
            *submitted* spec's engine section is deliberately ignored
            (clients describe what to compute, the operator decides
            how).  Resolved once into one shared
            :class:`~repro.api.EngineSession`.
        host/port: Bind address; port 0 picks a free port (see
            :attr:`port` after :meth:`start`).
        instance_id: The ``served_by`` stamp for manifests and status
            documents (default: a fresh ``serve-<hex>`` id).
        max_inflight: Per-client ceiling on unfinished (queued or
            running) runs; exceeding it is a 429 ``admission.client``.
        max_queue: Global ceiling on queued runs; exceeding it is a
            429 ``admission.queue``.
        autostart: Start the executor worker with the server.  Tests
            pass False to fill queues deterministically and then call
            :meth:`start_worker`.
        drain_grace: Seconds the drained server keeps answering
            requests before closing, so clients polling an
            accepted run can still collect its final status (their
            poll interval is well under the default 2s).
    """

    def __init__(
        self,
        options: Optional[EngineOptions] = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        instance_id: Optional[str] = None,
        max_inflight: int = 4,
        max_queue: int = 32,
        autostart: bool = True,
        drain_grace: float = 2.0,
    ) -> None:
        self.options = options if options is not None else EngineOptions()
        self.host = host
        self.port = port
        self.instance_id = (
            instance_id
            if instance_id is not None
            else f"serve-{uuid.uuid4().hex[:12]}"
        )
        self.max_inflight = int(max_inflight)
        self.max_queue = int(max_queue)
        self.autostart = autostart
        self.drain_grace = float(drain_grace)

        self.metrics = Metrics()
        self.session: Optional[EngineSession] = None
        self._runs: Dict[str, RunState] = {}
        # client -> FIFO of queued RunStates; OrderedDict doubles as the
        # round-robin rotation (move_to_end after each grant).
        self._queues: "OrderedDict[str, deque]" = OrderedDict()
        self._queued = 0
        self._work = asyncio.Event()
        self._draining = False
        self._server: Optional[asyncio.AbstractServer] = None
        self._worker_task: Optional[asyncio.Task] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._drained = asyncio.Event()

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        """Bind the socket, resolve the engine, start serving."""
        self.session = EngineSession.resolve(
            self.options, served_by=self.instance_id
        )
        # One thread: the engine's METRICS/TRACER registries are
        # process-global, so specs must not execute concurrently.
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve"
        )
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.autostart:
            self.start_worker()

    def start_worker(self) -> None:
        """Start the executor worker (idempotent; loop must be running)."""
        if self._worker_task is None:
            self._worker_task = asyncio.get_running_loop().create_task(
                self._worker()
            )

    def drain(self) -> None:
        """Stop admitting runs; the worker exits once queues are empty."""
        self._draining = True
        self._work.set()
        if self._worker_task is None:
            self._drained.set()

    async def stop(self) -> None:
        """Drain, wait for accepted work, and release every resource."""
        self.drain()
        await self._drained.wait()
        if self._worker_task is not None:
            await self._worker_task
        if self.drain_grace > 0:
            # Accepted runs just finished; their submitters are still
            # polling.  Linger so the final status GET lands.
            await asyncio.sleep(self.drain_grace)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._executor is not None:
            self._executor.shutdown(wait=True)
        if self.session is not None:
            self.session.close()

    async def serve_until_signalled(self) -> None:
        """Run until SIGTERM/SIGINT, then drain and stop (exit 0 path)."""
        loop = asyncio.get_running_loop()
        stop_requested = asyncio.Event()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop_requested.set)
            except (NotImplementedError, RuntimeError):
                pass
        await self.start()
        print(
            f"repro serve: {self.instance_id} listening on "
            f"http://{self.host}:{self.port} "
            f"(jobs={self.session.jobs}, cache="
            f"{self.session.cache.root if self.session.cache else 'off'}, "
            f"journal={self.session.journal.path if self.session.journal else 'off'})",
            flush=True,
        )
        await stop_requested.wait()
        print("repro serve: draining...", flush=True)
        await self.stop()
        print("repro serve: drained, bye", flush=True)

    # -- admission & scheduling ---------------------------------------------

    def _inflight(self, client: str) -> int:
        return sum(
            1
            for state in self._runs.values()
            if state.client == client and not state.finished
        )

    def submit(self, spec: RunSpec, client: str) -> Tuple[RunState, bool]:
        """Admit one spec for a client.

        Returns ``(state, created)`` -- ``created`` False means the
        spec deduped onto an existing (in-flight or completed) run.

        Raises:
            AdmissionError: Draining, client over its in-flight limit,
                or global queue full.
        """
        run_id = spec.digest()
        existing = self._runs.get(run_id)
        if existing is not None:
            self.metrics.inc("serve.dedup_hits")
            self.metrics.inc(f"serve.client.{client}.dedup_hits")
            return existing, False
        if self._draining:
            raise AdmissionError(
                "server is draining; resubmit after restart",
                code="admission.draining",
            )
        if self._inflight(client) >= self.max_inflight:
            raise AdmissionError(
                f"client {client!r} has {self.max_inflight} runs in "
                "flight; wait for one to finish",
                code="admission.client",
                retry_after=1,
            )
        if self._queued >= self.max_queue:
            raise AdmissionError(
                f"queue full ({self.max_queue} runs waiting)",
                code="admission.queue",
                retry_after=5,
            )
        state = RunState(run_id, spec, client)
        self._runs[run_id] = state
        self._queues.setdefault(client, deque()).append(state)
        self._queued += 1
        self.metrics.inc("serve.submitted")
        self.metrics.inc(f"serve.client.{client}.submitted")
        self.metrics.gauge("serve.queue_depth", self._queued)
        state.add_event("queued", client=client)
        self._work.set()
        return state, True

    def _next_state(self) -> Optional[RunState]:
        """Round-robin over clients, FIFO within each client's queue."""
        for client in list(self._queues):
            queue = self._queues[client]
            if queue:
                state = queue.popleft()
                self._queues.move_to_end(client)
                if not queue:
                    del self._queues[client]
                self._queued -= 1
                self.metrics.gauge("serve.queue_depth", self._queued)
                return state
        return None

    async def _worker(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            state = self._next_state()
            if state is None:
                if self._draining:
                    break
                self._work.clear()
                await self._work.wait()
                continue
            state.status = "running"
            self.metrics.gauge("serve.running", 1)
            state.add_event("started", served_by=self.instance_id)

            def _log(message: str, _state: "RunState" = state) -> None:
                # Called from the executor thread; hop back onto the
                # loop before touching the event list.
                loop.call_soon_threadsafe(
                    functools.partial(
                        _state.add_event, "log", message=message
                    )
                )

            try:
                run = await loop.run_in_executor(
                    self._executor,
                    lambda: run_spec(
                        state.spec,
                        engine=self.session,
                        echo=lambda message: _log(message),
                    ),
                )
            except ReproError as error:
                state.error = error.to_dict()
                state.status = "failed"
                self.metrics.inc("serve.failed")
                state.add_event("failed", error=state.error)
            except Exception as error:  # engine bug: fail the run, not the server
                state.error = {
                    "schema": "error/v1",
                    "error": "engine.failed",
                    "message": f"{type(error).__name__}: {error}",
                }
                state.status = "failed"
                self.metrics.inc("serve.failed")
                state.add_event("failed", error=state.error)
            else:
                state.result = run.to_dict()
                state.status = "done" if run.ok else "failed"
                self.metrics.inc(
                    "serve.completed" if run.ok else "serve.failed"
                )
                manifest = state.result.get("manifest") or {}
                state.add_event(
                    "manifest",
                    manifest={
                        "spec_digest": manifest.get("spec_digest"),
                        "config_digest": manifest.get("config_digest"),
                        "served_by": manifest.get("served_by"),
                        "experiments": [
                            {
                                "id": entry.get("id"),
                                "result_digest": entry.get("result_digest"),
                            }
                            for entry in manifest.get("experiments", [])
                        ],
                    },
                )
                state.add_event(
                    "metrics",
                    metrics=state.result.get("metrics", {}).get(
                        "counters", {}
                    ),
                )
                state.add_event("done", ok=run.ok)
            self.metrics.gauge("serve.running", 0)
        self._drained.set()

    # -- HTTP layer ---------------------------------------------------------

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, path, headers, body = request
            self.metrics.inc("serve.requests")
            client = headers.get("x-repro-client")
            if not client:
                peer = writer.get_extra_info("peername")
                client = peer[0] if peer else ANONYMOUS_CLIENT
            await self._route(method, path, headers, body, client, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        try:
            request_line = await reader.readline()
        except (ConnectionError, asyncio.LimitOverrunError):
            return None
        if not request_line:
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            return None
        method, path, _version = parts
        headers: Dict[str, str] = {}
        total = 0
        while True:
            line = await reader.readline()
            total += len(line)
            if total > _MAX_HEADER_BYTES:
                return None
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length < 0 or length > _MAX_BODY_BYTES:
            return None
        body = await reader.readexactly(length) if length else b""
        return method, path, headers, body

    async def _route(
        self,
        method: str,
        path: str,
        headers: Dict[str, str],
        body: bytes,
        client: str,
        writer: asyncio.StreamWriter,
    ) -> None:
        if method == "POST" and path == "/v1/runs":
            await self._post_run(body, client, writer)
        elif method == "GET" and path == "/v1/healthz":
            await self._send_json(
                writer,
                200,
                {
                    "ok": True,
                    "served_by": self.instance_id,
                    "draining": self._draining,
                },
            )
        elif method == "GET" and path == "/v1/metrics":
            snapshot = self.metrics.snapshot()
            snapshot["schema"] = "metrics/v1"
            snapshot["served_by"] = self.instance_id
            await self._send_json(writer, 200, snapshot)
        elif method == "GET" and path.startswith("/v1/runs/"):
            rest = path[len("/v1/runs/"):]
            if rest.endswith("/events"):
                await self._stream_events(rest[: -len("/events")].rstrip("/"), writer)
            else:
                await self._get_run(rest, writer)
        else:
            await self._send_json(
                writer,
                404,
                {
                    "schema": "error/v1",
                    "error": "http.not_found",
                    "message": f"no route for {method} {path}",
                },
            )

    async def _post_run(
        self, body: bytes, client: str, writer: asyncio.StreamWriter
    ) -> None:
        try:
            payload = json.loads(body.decode("utf-8") or "null")
            if not isinstance(payload, dict):
                raise SpecError("request body must be a RunSpec JSON object")
            spec = RunSpec.from_dict(payload)
            state, created = self.submit(spec, client)
        except ReproError as error:
            self.metrics.inc("serve.rejected")
            await self._send_json(writer, error.http_status, error.to_dict())
            return
        except (ValueError, UnicodeDecodeError) as error:
            self.metrics.inc("serve.rejected")
            await self._send_json(
                writer,
                400,
                {
                    "schema": "error/v1",
                    "error": "spec.invalid",
                    "message": str(error),
                },
            )
            return
        await self._send_json(
            writer,
            201 if created else 200,
            {
                "id": state.id,
                "status": state.status,
                "deduped": not created,
                "served_by": self.instance_id,
            },
        )

    async def _get_run(
        self, run_id: str, writer: asyncio.StreamWriter
    ) -> None:
        state = self._runs.get(run_id)
        if state is None:
            await self._send_json(
                writer,
                404,
                {
                    "schema": "error/v1",
                    "error": "run.unknown",
                    "message": f"no run {run_id!r} on this server",
                },
            )
            return
        await self._send_json(writer, 200, state.status_doc(self.instance_id))

    async def _stream_events(
        self, run_id: str, writer: asyncio.StreamWriter
    ) -> None:
        state = self._runs.get(run_id)
        if state is None:
            await self._send_json(
                writer,
                404,
                {
                    "schema": "error/v1",
                    "error": "run.unknown",
                    "message": f"no run {run_id!r} on this server",
                },
            )
            return
        # Chunked, not read-until-EOF: forked pool workers inherit this
        # connection's fd, so the client would never see EOF while any
        # worker lives.  The terminating 0-chunk ends the stream at the
        # protocol level instead.
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Transfer-Encoding: chunked\r\n"
            b"Connection: close\r\n\r\n"
        )
        sent = 0
        while True:
            changed = state.changed
            while sent < len(state.events):
                line = json.dumps(
                    state.events[sent], sort_keys=True
                ).encode("utf-8") + b"\n"
                writer.write(
                    f"{len(line):x}\r\n".encode("latin-1") + line + b"\r\n"
                )
                sent += 1
            await writer.drain()
            if state.finished and sent >= len(state.events):
                break
            await changed.wait()
        writer.write(b"0\r\n\r\n")
        await writer.drain()

    async def _send_json(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Dict[str, Any],
        extra_headers: Tuple[Tuple[str, str], ...] = (),
    ) -> None:
        reasons = {
            200: "OK",
            201: "Created",
            400: "Bad Request",
            404: "Not Found",
            429: "Too Many Requests",
            500: "Internal Server Error",
        }
        body = json.dumps(payload, sort_keys=True, indent=2).encode("utf-8")
        head = [
            f"HTTP/1.1 {status} {reasons.get(status, 'Unknown')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        retry_after = payload.get("retry_after")
        if status == 429 and retry_after is not None:
            head.append(f"Retry-After: {retry_after}")
        for name, value in extra_headers:
            head.append(f"{name}: {value}")
        writer.write(
            ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body
        )
        await writer.drain()


class ServerThread:
    """Run an :class:`AnalysisServer` on a background event loop.

    The in-process form the tests (and embedding applications) use:
    ``start()`` blocks until the socket is bound and returns the base
    URL; ``stop()`` drains and joins.
    """

    def __init__(self, server: AnalysisServer) -> None:
        self.server = server
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread = None

    def start(self, timeout: float = 30.0) -> str:
        started = threading.Event()
        failure: List[BaseException] = []

        def _run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            try:
                loop.run_until_complete(self.server.start())
            except BaseException as error:  # surface bind errors to start()
                failure.append(error)
                started.set()
                return
            started.set()
            loop.run_forever()
            loop.run_until_complete(self.server.stop())
            loop.close()

        self._thread = threading.Thread(
            target=_run, name="repro-serve-loop", daemon=True
        )
        self._thread.start()
        if not started.wait(timeout):
            raise RuntimeError("server did not start in time")
        if failure:
            raise failure[0]
        return self.url

    @property
    def url(self) -> str:
        return f"http://{self.server.host}:{self.server.port}"

    def call_soon(self, callback, *args) -> None:
        """Schedule a callback on the server loop (thread-safe)."""
        assert self._loop is not None
        self._loop.call_soon_threadsafe(callback, *args)

    def stop(self, timeout: float = 60.0) -> None:
        if self._loop is None:
            return
        self._loop.call_soon_threadsafe(self.server.drain)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout)


def main(argv: Optional[List[str]] = None) -> int:
    """``repro serve``: run the daemon until SIGTERM/SIGINT."""
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description=(
            "Serve RunSpec execution over HTTP: POST specs to "
            "/v1/runs, poll /v1/runs/{id}, stream /v1/runs/{id}/events."
            "  Identical specs dedupe onto one execution; all runs "
            "share one warm cache, journal and worker pool."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8023)
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes per run (default: REPRO_JOBS or CPUs)",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="result cache root (default: REPRO_CACHE_DIR or .repro-cache)",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    parser.add_argument(
        "--journal", default=DEFAULT_SERVE_JOURNAL,
        help=(
            "crash-safe journal path (empty value to disable; default "
            f"{DEFAULT_SERVE_JOURNAL}, resumed on restart)"
        ),
    )
    parser.add_argument(
        "--chunk-branches", type=int, default=None, metavar="N",
        help=(
            "stream simulations over N-branch windows (bounded memory; "
            "default: REPRO_CHUNK_BRANCHES or whole-trace)"
        ),
    )
    parser.add_argument(
        "--instance-id", default=None,
        help="served_by stamp (default: a fresh serve-<hex> id)",
    )
    parser.add_argument(
        "--max-inflight", type=int, default=4,
        help="per-client unfinished-run ceiling (429 beyond it)",
    )
    parser.add_argument(
        "--max-queue", type=int, default=32,
        help="global queued-run ceiling (429 beyond it)",
    )
    parser.add_argument(
        "--drain-grace", type=float, default=2.0,
        help=(
            "seconds a drained server keeps answering polls before "
            "closing (default 2)"
        ),
    )
    args = parser.parse_args(argv)

    try:
        options = EngineOptions.from_env(
            jobs=args.jobs,
            cache=not args.no_cache,
            cache_dir=args.cache_dir,
            journal=args.journal or None,
            resume=bool(args.journal),
            chunk_branches=args.chunk_branches,
        )
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return error.exit_code
    server = AnalysisServer(
        options,
        host=args.host,
        port=args.port,
        instance_id=args.instance_id,
        max_inflight=args.max_inflight,
        max_queue=args.max_queue,
        drain_grace=args.drain_grace,
    )
    try:
        asyncio.run(server.serve_until_signalled())
    except OSError as error:
        print(f"error: cannot bind {args.host}:{args.port}: {error}",
              file=sys.stderr)
        return 1
    return 0


__all__ = [
    "ANONYMOUS_CLIENT",
    "AnalysisServer",
    "DEFAULT_SERVE_JOURNAL",
    "EVENT_SCHEMA",
    "RunState",
    "ServerThread",
    "main",
]


if __name__ == "__main__":
    sys.exit(main())
