"""Thin client for the ``repro serve`` wire API.

:class:`ServeClient` speaks the versioned HTTP API from
``docs/serving.md`` using only :mod:`http.client` -- no dependencies,
so scripts and tests can drive a server with the same few lines::

    from repro.client import ServeClient
    client = ServeClient("http://127.0.0.1:8023", client_id="ci")
    run_id, created = client.submit(spec)
    doc = client.wait(run_id)          # poll until done/failed
    doc["result"]                      # the result/v1 envelope

Server-side errors come back as :mod:`repro.errors` exceptions: a 429
raises :class:`~repro.errors.AdmissionError` with the server's
machine-readable code, a 400 raises
:class:`~repro.errors.SpecError`, and so on --
:func:`repro.errors.error_from_payload` rehydrates them from the
``error/v1`` body, so client code handles local and served runs with
one ``except`` clause.

``repro submit`` is the CLI face: submit a spec file, stream or poll,
and write the result envelope / exit with the standard code contract.
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import sys
import time
from typing import Any, Dict, Iterator, List, Optional, Tuple
from urllib.parse import urlsplit

from repro.errors import EngineError, ReproError, error_from_payload
from repro.spec import RunSpec

#: How long :meth:`ServeClient.wait` sleeps between status polls.
DEFAULT_POLL_SECONDS = 0.2


class ServeClient:
    """One server endpoint plus this client's identity.

    Args:
        base_url: ``http://host:port`` of a running ``repro serve``.
        client_id: Sent as ``X-Repro-Client``; the server's admission
            control and fairness are per client id (default: this
            process's pid-stamped id).
        timeout: Socket timeout per request, seconds.
    """

    def __init__(
        self,
        base_url: str,
        *,
        client_id: Optional[str] = None,
        timeout: float = 60.0,
    ) -> None:
        split = urlsplit(base_url)
        if split.scheme != "http" or not split.hostname:
            raise ValueError(
                f"base_url must look like http://host:port, got {base_url!r}"
            )
        self.host = split.hostname
        self.port = split.port or 80
        self.client_id = (
            client_id if client_id is not None else f"pid-{os.getpid()}"
        )
        self.timeout = timeout

    # -- low level ----------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
    ) -> Tuple[int, Dict[str, Any]]:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            headers = {"X-Repro-Client": self.client_id}
            if body is not None:
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
        finally:
            connection.close()
        try:
            payload = json.loads(raw.decode("utf-8")) if raw else {}
        except ValueError:
            raise EngineError(
                f"server returned non-JSON ({response.status}) for "
                f"{method} {path}"
            ) from None
        return response.status, payload

    def _checked(
        self, method: str, path: str, body: Optional[bytes] = None
    ) -> Tuple[int, Dict[str, Any]]:
        status, payload = self._request(method, path, body)
        if status >= 400:
            raise error_from_payload(payload)
        return status, payload

    # -- wire API -----------------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        return self._checked("GET", "/v1/healthz")[1]

    def metrics(self) -> Dict[str, Any]:
        return self._checked("GET", "/v1/metrics")[1]

    def submit(self, spec: RunSpec) -> Tuple[str, bool]:
        """Submit a spec; returns ``(run_id, created)``.

        ``created`` False means the server deduped this submission onto
        an existing run (201 vs 200 on the wire).

        Raises:
            AdmissionError: 429 -- over the in-flight or queue limit.
            SpecError: 400 -- the server rejected the spec.
        """
        status, payload = self._checked(
            "POST",
            "/v1/runs",
            json.dumps(spec.to_dict()).encode("utf-8"),
        )
        return payload["id"], status == 201

    def status(self, run_id: str) -> Dict[str, Any]:
        """The run's status document (embeds ``result`` once finished)."""
        return self._checked("GET", f"/v1/runs/{run_id}")[1]

    def result(self, run_id: str) -> Optional[Dict[str, Any]]:
        """The run's ``result/v1`` envelope, or None while unfinished."""
        return self.status(run_id).get("result")

    def wait(
        self,
        run_id: str,
        *,
        timeout: Optional[float] = None,
        poll: float = DEFAULT_POLL_SECONDS,
    ) -> Dict[str, Any]:
        """Poll until the run finishes; returns the final status doc.

        Raises:
            EngineError: If ``timeout`` seconds pass first.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            doc = self.status(run_id)
            if doc.get("status") in ("done", "failed"):
                return doc
            if deadline is not None and time.monotonic() > deadline:
                raise EngineError(
                    f"run {run_id} still {doc.get('status')!r} after "
                    f"{timeout}s"
                )
            time.sleep(poll)

    def events(self, run_id: str) -> Iterator[Dict[str, Any]]:
        """Stream the run's ND-JSON events until the terminal one.

        Yields each ``event/v1`` document as a dict, in ``seq`` order.
        """
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            connection.request(
                "GET",
                f"/v1/runs/{run_id}/events",
                headers={"X-Repro-Client": self.client_id},
            )
            response = connection.getresponse()
            if response.status >= 400:
                raw = response.read()
                try:
                    payload = json.loads(raw.decode("utf-8"))
                except ValueError:
                    payload = {}
                raise error_from_payload(payload)
            buffer = b""
            while True:
                chunk = response.read1(65536)
                if not chunk:
                    break
                buffer += chunk
                while b"\n" in buffer:
                    line, buffer = buffer.split(b"\n", 1)
                    if line.strip():
                        yield json.loads(line.decode("utf-8"))
        finally:
            connection.close()


def main(argv: Optional[List[str]] = None) -> int:
    """``repro submit``: run a spec file through a serve daemon."""
    parser = argparse.ArgumentParser(
        prog="repro submit",
        description=(
            "Submit a RunSpec JSON file to a 'repro serve' daemon, "
            "wait for it, and report like a local run.  Identical "
            "specs dedupe server-side onto one execution."
        ),
    )
    parser.add_argument("spec", metavar="SPEC", help="RunSpec JSON file")
    parser.add_argument(
        "--server", default="http://127.0.0.1:8023",
        help="base URL of the daemon (default http://127.0.0.1:8023)",
    )
    parser.add_argument(
        "--client-id", default=None,
        help="admission-control identity (default: pid-<pid>)",
    )
    parser.add_argument(
        "--result-out", metavar="PATH", default=None,
        help="write the result/v1 envelope to PATH",
    )
    parser.add_argument(
        "--follow", action="store_true",
        help="stream the run's ND-JSON events to stdout while waiting",
    )
    parser.add_argument(
        "--timeout", type=float, default=None,
        help="give up after this many seconds (exit 1)",
    )
    args = parser.parse_args(argv)

    from repro.cli import _load_spec

    spec, error_code = _load_spec(args.spec)
    if spec is None:
        return error_code
    client = ServeClient(args.server, client_id=args.client_id)
    try:
        run_id, created = client.submit(spec)
        print(
            f"run {run_id} {'submitted' if created else 'deduped'} to "
            f"{args.server}"
        )
        if args.follow:
            for event in client.events(run_id):
                print(json.dumps(event, sort_keys=True), flush=True)
            doc = client.status(run_id)
        else:
            doc = client.wait(run_id, timeout=args.timeout)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return error.exit_code
    except (ConnectionError, OSError) as error:
        print(f"error: cannot reach {args.server}: {error}", file=sys.stderr)
        return 1
    if args.result_out and doc.get("result") is not None:
        with open(args.result_out, "w") as fh:
            json.dump(doc["result"], fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"result envelope written to {args.result_out}")
    if doc.get("status") != "done":
        error = doc.get("error") or {}
        print(
            f"error: run {run_id} {doc.get('status')}"
            + (f": {error.get('message')}" if error else ""),
            file=sys.stderr,
        )
        return 1
    print(f"run {run_id} done")
    return 0


__all__ = ["DEFAULT_POLL_SECONDS", "ServeClient", "main"]


if __name__ == "__main__":
    sys.exit(main())
