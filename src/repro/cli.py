"""Command-line interface: ``repro [experiment ids | all | report]``.

A thin shell over :func:`repro.api.run_report` -- the CLI parses flags,
the facade runs the instrumented pipeline, so library runs and CLI runs
are the same code path.

Examples::

    repro table2                 # one experiment
    repro fig4 fig5              # several
    repro all                    # the whole suite, paper order
    repro report                 # same as 'all' (parallel + cached)
    repro all --max-length 50000 # smaller traces, faster
    repro all --jobs 4           # explicit worker count
    repro all --no-cache         # force recomputation
    repro report --metrics-out m.json --trace-out spans.json
    repro report --resume        # replay journaled results after a kill
    repro report --retries 3 --task-timeout 120   # resilience knobs
    repro report --inject-fault gshare:1:crash    # deterministic chaos
    repro obs show run_manifest.json   # inspect/validate a manifest
    repro cache stats            # inspect the result cache
    repro cache clear            # reclaim the cache directory
    python -m repro all          # equivalent module form
    python -m repro check        # static verification (repro.check)

``repro report`` / ``repro all`` also write a schema-versioned run
manifest (``run_manifest.json`` by default; ``--manifest-out`` to move
or, with an empty value, suppress it) and a crash-safe result journal
(``run_journal.jsonl``; ``--journal`` to move/suppress, ``--resume`` to
replay it after an interrupted run).

Exit codes: 0 clean; 1 finished with recorded failures; 2 bad usage;
130 interrupted.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.analysis.config import LabConfig
from repro.cliopts import DEFAULT_SEED, engine_parent, fault_spec_from_args
from repro.experiments.base import EXPERIMENT_IDS, EXTENSION_IDS
from repro.resilience.faults import FaultSpecError

#: Where ``repro report`` / ``repro all`` put the run manifest unless
#: ``--manifest-out`` says otherwise.
DEFAULT_MANIFEST_NAME = "run_manifest.json"

#: Where ``repro report`` / ``repro all`` journal completed experiment
#: results unless ``--journal`` says otherwise.
DEFAULT_JOURNAL_NAME = "run_journal.jsonl"

#: Conventional exit code for a SIGINT/SIGTERM-terminated run.
EXIT_INTERRUPTED = 130


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        parents=[engine_parent()],
        description=(
            "Reproduce the tables and figures of Evers et al., 'An "
            "Analysis of Correlation and Predictability' (ISCA 1998)."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        help=(
            f"experiment ids ({', '.join(EXPERIMENT_IDS)}), extension ids "
            f"({', '.join(EXTENSION_IDS)}), 'all' (paper artefacts), "
            "'report' (alias for all), 'extensions', 'cache' "
            "(stats|clear), 'obs' (show|validate|diff), or 'check' "
            "(static verification)"
        ),
    )
    parser.add_argument(
        "--max-length",
        type=int,
        default=None,
        help=(
            "dynamic branch count of the longest benchmark; the others "
            "keep the paper's proportions (default: REPRO_TRACE_LENGTH "
            "or 200000)"
        ),
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also export the structured results as JSON to PATH",
    )
    parser.add_argument(
        "--gshare-history",
        type=int,
        default=None,
        help="override the reference gshare history length",
    )
    parser.add_argument(
        "--manifest-out",
        metavar="PATH",
        default=None,
        help=(
            "write the run manifest to PATH (default: "
            f"{DEFAULT_MANIFEST_NAME} for 'report'/'all', none "
            "otherwise; pass an empty value to suppress)"
        ),
    )
    parser.add_argument(
        "--journal",
        metavar="PATH",
        default=None,
        help=(
            "journal completed experiment results to PATH (default: "
            f"{DEFAULT_JOURNAL_NAME} for 'report'/'all', none "
            "otherwise; pass an empty value to suppress)"
        ),
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help=(
            "replay experiments already in the journal (matched by "
            "config/seed/trace digests) instead of re-running them"
        ),
    )
    return parser


def _cache_parser() -> argparse.ArgumentParser:
    return argparse.ArgumentParser(
        prog="repro cache",
        parents=[engine_parent()],
        description="Inspect or clear the on-disk result cache.",
    )


def _cache_main(argv: List[str]) -> int:
    from repro.analysis.cache import ResultCache

    parser = _cache_parser()
    parser.add_argument("action", choices=("stats", "clear"))
    args = parser.parse_args(argv)
    cache = ResultCache(args.cache_dir)
    if args.action == "stats":
        # A missing or empty cache directory is a normal state (fresh
        # checkout, post-clear): report zero entries, exit 0.
        count = cache.entry_count()
        size = cache.total_bytes()
        print(f"cache directory: {cache.root}")
        print(f"entries: {count}")
        print(f"size: {size / 1e6:.2f} MB")
        print(f"quarantined: {cache.quarantine_count()}")
    else:
        removed = cache.clear()
        print(f"removed {removed} entries from {cache.root}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "check":
        # Static analysis has its own argument set; dispatch before the
        # experiment parser sees it.
        from repro.check.cli import main as check_main

        return check_main(argv[1:])
    if argv and argv[0] == "cache":
        return _cache_main(argv[1:])
    if argv and argv[0] == "obs":
        from repro.obs.cli import main as obs_main

        return obs_main(argv[1:])
    args = _parser().parse_args(argv)
    requested: List[str] = []
    wants_manifest = False
    for item in args.experiments:
        if item in ("all", "report"):
            requested.extend(EXPERIMENT_IDS)
            wants_manifest = True
        elif item == "extensions":
            requested.extend(EXTENSION_IDS)
        elif item in EXPERIMENT_IDS or item in EXTENSION_IDS:
            requested.append(item)
        else:
            print(
                f"error: unknown experiment {item!r}; choose from "
                f"{', '.join(EXPERIMENT_IDS + EXTENSION_IDS)}, 'all', "
                "'report' or 'extensions'",
                file=sys.stderr,
            )
            return 2

    config = LabConfig()
    if args.gshare_history is not None:
        config = LabConfig(
            gshare_history_bits=args.gshare_history,
            gshare_pht_bits=args.gshare_history,
        )

    manifest_out = args.manifest_out
    if manifest_out is None and wants_manifest:
        manifest_out = DEFAULT_MANIFEST_NAME
    journal = args.journal
    if journal is None and (wants_manifest or args.resume):
        journal = DEFAULT_JOURNAL_NAME

    from repro.api import run_report

    start = time.time()
    try:
        run = run_report(
            requested,
            max_length=args.max_length,
            config=config,
            seed=args.seed,
            jobs=args.jobs,
            use_cache=not args.no_cache,
            cache_dir=args.cache_dir,
            json_out=args.json,
            manifest_out=manifest_out or None,
            metrics_out=args.metrics_out,
            trace_out=args.trace_out,
            command=["repro", *argv],
            echo=lambda message: print(message, flush=True),
            retries=args.retries,
            task_timeout=args.task_timeout,
            fault_spec=fault_spec_from_args(args),
            journal_path=journal or None,
            resume=args.resume,
        )
    except FaultSpecError as error:
        # Malformed fault spec / resilience configuration: usage error.
        print(f"error: {error}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print(
            "interrupted; completed experiments are journaled -- "
            "re-run with --resume to continue",
            file=sys.stderr,
        )
        return EXIT_INTERRUPTED
    print(f"done in {time.time() - start:.1f}s")
    if run.failures:
        for failure in run.failures:
            scope = failure.get("scope", "task")
            where = (
                failure.get("experiment_id")
                if scope == "experiment"
                else f"{failure.get('benchmark')}/{failure.get('task')}"
            )
            print(
                f"error: {scope} {where} failed "
                f"[{failure.get('kind')}]: {failure.get('message')}",
                file=sys.stderr,
            )
        print(
            f"error: run finished with {len(run.failures)} recorded "
            "failure(s)",
            file=sys.stderr,
        )
        return 1
    return 0


__all__ = [
    "DEFAULT_JOURNAL_NAME",
    "DEFAULT_MANIFEST_NAME",
    "DEFAULT_SEED",
    "EXIT_INTERRUPTED",
    "main",
]


if __name__ == "__main__":
    sys.exit(main())
