"""Command-line interface: ``repro [experiment ids | all | report]``.

Examples::

    repro table2                 # one experiment
    repro fig4 fig5              # several
    repro all                    # the whole suite, paper order
    repro report                 # same as 'all' (parallel + cached)
    repro all --max-length 50000 # smaller traces, faster
    repro all --jobs 4           # explicit worker count
    repro all --no-cache         # force recomputation
    repro cache stats            # inspect the result cache
    repro cache clear            # reclaim the cache directory
    python -m repro all          # equivalent module form
    python -m repro check        # static verification (repro.check)
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.analysis.config import LabConfig
from repro.experiments.base import (
    EXPERIMENT_IDS,
    EXTENSION_IDS,
    build_labs,
    run_experiment,
)


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce the tables and figures of Evers et al., 'An "
            "Analysis of Correlation and Predictability' (ISCA 1998)."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        help=(
            f"experiment ids ({', '.join(EXPERIMENT_IDS)}), extension ids "
            f"({', '.join(EXTENSION_IDS)}), 'all' (paper artefacts), "
            "'report' (alias for all), 'extensions', 'cache' "
            "(stats|clear), or 'check' (static verification)"
        ),
    )
    parser.add_argument(
        "--max-length",
        type=int,
        default=None,
        help=(
            "dynamic branch count of the longest benchmark; the others "
            "keep the paper's proportions (default: REPRO_TRACE_LENGTH "
            "or 200000)"
        ),
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=12345,
        help="workload execution seed (the 'input data set')",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also export the structured results as JSON to PATH",
    )
    parser.add_argument(
        "--gshare-history",
        type=int,
        default=None,
        help="override the reference gshare history length",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help=(
            "simulation worker processes (default: REPRO_JOBS or the "
            "CPU count; 1 disables multiprocessing)"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the on-disk result cache entirely",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="result-cache directory (default: REPRO_CACHE_DIR or .repro-cache)",
    )
    return parser


def _cache_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro cache",
        description="Inspect or clear the on-disk result cache.",
    )
    parser.add_argument("action", choices=("stats", "clear"))
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="cache directory (default: REPRO_CACHE_DIR or .repro-cache)",
    )
    return parser


def _cache_main(argv: List[str]) -> int:
    from repro.analysis.cache import ResultCache

    args = _cache_parser().parse_args(argv)
    cache = ResultCache(args.cache_dir)
    if args.action == "stats":
        count = cache.entry_count()
        size = cache.total_bytes()
        print(f"cache directory: {cache.root}")
        print(f"entries: {count}")
        print(f"size: {size / 1e6:.2f} MB")
    else:
        removed = cache.clear()
        print(f"removed {removed} entries from {cache.root}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "check":
        # Static analysis has its own argument set; dispatch before the
        # experiment parser sees it.
        from repro.check.cli import main as check_main

        return check_main(argv[1:])
    if argv and argv[0] == "cache":
        return _cache_main(argv[1:])
    args = _parser().parse_args(argv)
    requested: List[str] = []
    for item in args.experiments:
        if item in ("all", "report"):
            requested.extend(EXPERIMENT_IDS)
        elif item == "extensions":
            requested.extend(EXTENSION_IDS)
        elif item in EXPERIMENT_IDS or item in EXTENSION_IDS:
            requested.append(item)
        else:
            print(
                f"error: unknown experiment {item!r}; choose from "
                f"{', '.join(EXPERIMENT_IDS + EXTENSION_IDS)}, 'all', "
                "'report' or 'extensions'",
                file=sys.stderr,
            )
            return 2

    config = LabConfig()
    if args.gshare_history is not None:
        config = LabConfig(
            gshare_history_bits=args.gshare_history,
            gshare_pht_bits=args.gshare_history,
        )

    from repro.analysis.cache import ResultCache
    from repro.analysis.parallel import resolve_jobs

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    jobs = resolve_jobs(args.jobs)

    start = time.time()
    print("building workload traces...", flush=True)
    labs = build_labs(args.max_length, config, args.seed, jobs=jobs, cache=cache)
    total = sum(len(lab.trace) for lab in labs.values())
    print(f"  {len(labs)} benchmarks, {total} dynamic branches", flush=True)
    if cache is not None:
        print(f"  cache: {cache.root} ({cache.stats.summary()})", flush=True)
    print(f"  jobs: {jobs}\n", flush=True)

    results = {}
    for experiment_id in dict.fromkeys(requested):
        print(f"running {experiment_id}...", flush=True)
        result = run_experiment(experiment_id, labs)
        results[experiment_id] = result
        print(f"\n{result}\n", flush=True)
    if args.json:
        from repro.experiments.export import export_results

        export_results(results, args.json)
        print(f"JSON results written to {args.json}")
    if cache is not None:
        print(f"cache: {cache.stats.summary()}")
    print(f"done in {time.time() - start:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
