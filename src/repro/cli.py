"""Command-line interface: ``repro [experiment ids | all | report]``.

A thin shell over :func:`repro.api.run_spec` -- the CLI parses flags
into a :class:`~repro.spec.RunSpec`, the facade runs the instrumented
pipeline, so library runs and CLI runs are the same code path.

Examples::

    repro table2                 # one experiment
    repro fig4 fig5              # several
    repro all                    # the whole suite, paper order
    repro report                 # same as 'all' (parallel + cached)
    repro all --max-length 50000 # smaller traces, faster
    repro all --jobs 4           # explicit worker count
    repro all --no-cache         # force recomputation
    repro report --metrics-out m.json --trace-out spans.json
    repro report --resume        # replay journaled results after a kill
    repro report --retries 3 --task-timeout 120   # resilience knobs
    repro report --inject-fault gshare:1:crash    # deterministic chaos
    repro report --emit-spec spec.json # write the equivalent RunSpec
    repro run spec.json          # execute a declarative run spec
    repro plan spec.json         # show the task graph, run nothing
    repro sweep spec.json        # execute a spec's config sweep
    repro sweep --experiments fig9 --axis gshare_history_bits=8,16
    repro sweep spec.json --axis mix.noise=0,1,2   # workload-mix sweep
    repro ingest trace.txt --emit-spec spec.json   # foreign traces
    repro serve --port 8023      # analysis-as-a-service daemon
    repro submit spec.json --server http://127.0.0.1:8023
    repro obs show run_manifest.json   # inspect/validate a manifest
    repro cache stats            # inspect the result cache
    repro cache clear            # reclaim the cache directory
    repro --version              # package version
    python -m repro all          # equivalent module form
    python -m repro check        # static verification (repro.check)

``repro report`` / ``repro all`` also write a schema-versioned run
manifest (``run_manifest.json`` by default; ``--manifest-out`` to move
or, with an empty value, suppress it) and a crash-safe result journal
(``run_journal.jsonl``; ``--journal`` to move/suppress, ``--resume`` to
replay it after an interrupted run).

Exit codes: 0 clean; 1 finished with recorded failures; 2 bad usage;
130 interrupted.  Every :class:`repro.errors.ReproError` subclass
carries its own ``exit_code``, so library and CLI error semantics stay
aligned.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.analysis.config import LabConfig
from repro.cliopts import (
    DEFAULT_SEED,
    engine_parent,
    fault_spec_from_args,
    version_string,
)
from repro.errors import EXIT_INTERRUPTED, ReproError
from repro.experiments.base import EXPERIMENT_IDS, EXTENSION_IDS

#: Where ``repro sweep`` puts per-point manifests unless
#: ``--manifest-dir`` says otherwise.
DEFAULT_SWEEP_DIR = "sweep_manifests"

#: Where ``repro report`` / ``repro all`` put the run manifest unless
#: ``--manifest-out`` says otherwise.
DEFAULT_MANIFEST_NAME = "run_manifest.json"

#: Where ``repro report`` / ``repro all`` journal completed experiment
#: results unless ``--journal`` says otherwise.
DEFAULT_JOURNAL_NAME = "run_journal.jsonl"

# EXIT_INTERRUPTED (130, the conventional SIGINT code) moved to
# repro.errors with the rest of the exit-code contract; re-exported
# here for its historical import path.


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        parents=[engine_parent()],
        description=(
            "Reproduce the tables and figures of Evers et al., 'An "
            "Analysis of Correlation and Predictability' (ISCA 1998)."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        help=(
            f"experiment ids ({', '.join(EXPERIMENT_IDS)}), extension ids "
            f"({', '.join(EXTENSION_IDS)}), 'all' (paper artefacts), "
            "'report' (alias for all), 'extensions', 'cache' "
            "(stats|clear), 'obs' (show|validate|diff), or 'check' "
            "(static verification)"
        ),
    )
    parser.add_argument(
        "--max-length",
        type=int,
        default=None,
        help=(
            "dynamic branch count of the longest benchmark; the others "
            "keep the paper's proportions (default: REPRO_TRACE_LENGTH "
            "or 200000)"
        ),
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also export the structured results as JSON to PATH",
    )
    parser.add_argument(
        "--gshare-history",
        type=int,
        default=None,
        help="override the reference gshare history length",
    )
    parser.add_argument(
        "--manifest-out",
        metavar="PATH",
        default=None,
        help=(
            "write the run manifest to PATH (default: "
            f"{DEFAULT_MANIFEST_NAME} for 'report'/'all', none "
            "otherwise; pass an empty value to suppress)"
        ),
    )
    parser.add_argument(
        "--journal",
        metavar="PATH",
        default=None,
        help=(
            "journal completed experiment results to PATH (default: "
            f"{DEFAULT_JOURNAL_NAME} for 'report'/'all', none "
            "otherwise; pass an empty value to suppress)"
        ),
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help=(
            "replay experiments already in the journal (matched by "
            "config/seed/trace digests) instead of re-running them"
        ),
    )
    parser.add_argument(
        "--emit-spec",
        metavar="PATH",
        default=None,
        help=(
            "write the RunSpec these flags describe to PATH and exit "
            "without running (execute it later with 'repro run PATH')"
        ),
    )
    return parser


def _cache_parser() -> argparse.ArgumentParser:
    return argparse.ArgumentParser(
        prog="repro cache",
        parents=[engine_parent()],
        description="Inspect or clear the on-disk result cache.",
    )


def _cache_main(argv: List[str]) -> int:
    from repro.analysis.cache import ResultCache
    from repro.spec import EngineOptions

    parser = _cache_parser()
    parser.add_argument("action", choices=("stats", "clear"))
    args = parser.parse_args(argv)
    # One resolution path for REPRO_CACHE_DIR & co: the same
    # EngineOptions.from_env() the engine itself uses.
    options = EngineOptions.from_env(cache_dir=args.cache_dir)
    cache = ResultCache(options.cache_dir)
    if args.action == "stats":
        # A missing or empty cache directory is a normal state (fresh
        # checkout, post-clear): report zero entries, exit 0.
        count = cache.entry_count()
        size = cache.total_bytes()
        print(f"cache directory: {cache.root}")
        print(f"entries: {count}")
        print(f"size: {size / 1e6:.2f} MB")
        print(f"quarantined: {cache.quarantine_count()}")
    else:
        removed = cache.clear()
        print(f"removed {removed} entries from {cache.root}")
    return 0


def _load_spec(path: str):
    """Read a RunSpec file; returns (spec, None) or (None, exit code)."""
    from repro.spec import RunSpec, SpecError

    try:
        return RunSpec.from_file(path), None
    except OSError as error:
        print(f"error: cannot read spec {path!r}: {error}", file=sys.stderr)
        return None, 2
    except SpecError as error:
        print(f"error: {error}", file=sys.stderr)
        return None, 2


def _engine_overrides(spec, args):
    """Fold explicitly-given engine flags over a spec's engine options.

    Only flags the user actually passed override the spec; everything
    else keeps the spec file's value, so a spec is reproducible by
    default and steerable when needed.
    """
    import dataclasses

    updates = {}
    if args.jobs is not None:
        updates["jobs"] = args.jobs
    if args.no_cache:
        updates["cache"] = False
    if args.cache_dir is not None:
        updates["cache_dir"] = args.cache_dir
    if args.retries is not None:
        updates["retries"] = args.retries
    if args.task_timeout is not None:
        updates["task_timeout"] = args.task_timeout
    fault_spec = fault_spec_from_args(args)
    if fault_spec is not None:
        updates["fault_spec"] = fault_spec
    journal = getattr(args, "journal", None)
    if journal is not None:
        updates["journal"] = journal or None
    if getattr(args, "resume", False):
        updates["resume"] = True
    if getattr(args, "chunk_branches", None) is not None:
        updates["chunk_branches"] = args.chunk_branches
    if not updates:
        return spec
    return dataclasses.replace(
        spec, engine=dataclasses.replace(spec.engine, **updates)
    )


def _finish(run) -> int:
    """Map a finished ReportRun/SweepRun onto the CLI exit contract."""
    from repro.api import SweepRun

    failures = []
    if isinstance(run, SweepRun):
        for point in run.points:
            failures.extend(point.report.failures)
    else:
        failures = run.failures
    if failures:
        for failure in failures:
            scope = failure.get("scope", "task")
            where = (
                failure.get("experiment_id")
                if scope == "experiment"
                else f"{failure.get('benchmark')}/{failure.get('task')}"
            )
            print(
                f"error: {scope} {where} failed "
                f"[{failure.get('kind')}]: {failure.get('message')}",
                file=sys.stderr,
            )
        print(
            f"error: run finished with {len(failures)} recorded "
            "failure(s)",
            file=sys.stderr,
        )
        return 1
    return 0


def _execute_spec(spec, argv: List[str], **outputs) -> int:
    from repro.api import run_spec

    start = time.time()
    try:
        run = run_spec(
            spec,
            command=["repro", *argv],
            echo=lambda message: print(message, flush=True),
            **outputs,
        )
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return error.exit_code
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print(
            "interrupted; completed experiments are journaled -- "
            "re-run with --resume to continue",
            file=sys.stderr,
        )
        return EXIT_INTERRUPTED
    print(f"done in {time.time() - start:.1f}s")
    return _finish(run)


def _run_main(argv: List[str]) -> int:
    """``repro run SPEC``: execute a declarative run spec."""
    parser = argparse.ArgumentParser(
        prog="repro run",
        parents=[engine_parent()],
        description=(
            "Execute a RunSpec JSON file (see docs/spec.md).  Engine "
            "flags given here override the spec's engine section; the "
            "run's identity (workload, config, experiments, sweep) "
            "always comes from the file."
        ),
    )
    parser.add_argument("spec", metavar="SPEC", help="RunSpec JSON file")
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="also export the structured results as JSON to PATH",
    )
    parser.add_argument(
        "--manifest-out", metavar="PATH", default=None,
        help=(
            f"write the run manifest to PATH (default "
            f"{DEFAULT_MANIFEST_NAME}; empty value to suppress)"
        ),
    )
    parser.add_argument(
        "--manifest-dir", metavar="DIR", default=None,
        help=(
            "sweep specs: directory for per-point manifests (default "
            f"{DEFAULT_SWEEP_DIR})"
        ),
    )
    parser.add_argument(
        "--journal", metavar="PATH", default=None,
        help="override the spec's journal path (empty value to disable)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="replay journaled results instead of re-running them",
    )
    parser.add_argument(
        "--result-out", metavar="PATH", default=None,
        help=(
            "write the result/v1 envelope to PATH (the same document "
            "the server returns from GET /v1/runs/{id})"
        ),
    )
    args = parser.parse_args(argv)
    spec, error_code = _load_spec(args.spec)
    if spec is None:
        return error_code
    spec = _engine_overrides(spec, args)
    if spec.sweep is not None:
        return _execute_spec(
            spec,
            ["run", *argv],
            manifest_dir=args.manifest_dir or DEFAULT_SWEEP_DIR,
            result_out=args.result_out,
            metrics_out=args.metrics_out,
            trace_out=args.trace_out,
        )
    manifest_out = args.manifest_out
    if manifest_out is None:
        manifest_out = DEFAULT_MANIFEST_NAME
    return _execute_spec(
        spec,
        ["run", *argv],
        json_out=args.json,
        manifest_out=manifest_out or None,
        result_out=args.result_out,
        metrics_out=args.metrics_out,
        trace_out=args.trace_out,
    )


def _parse_axis(text: str):
    """Parse one ``--axis FIELD=V1,V2,...`` occurrence.

    Values parse as ints where possible, floats otherwise -- config and
    workload axes are integral, but ``mix.<class>`` weights are real.
    Which numeric types a given field actually accepts is enforced by
    :class:`~repro.spec.SweepSpec` validation, with the field name in
    the error.
    """
    name, _, values = text.partition("=")
    if not name or not values:
        raise ValueError(
            f"--axis expects FIELD=V1,V2,... , got {text!r}"
        )

    def _number(value: str):
        try:
            return int(value)
        except ValueError:
            try:
                return float(value)
            except ValueError:
                raise ValueError(
                    f"--axis {name}: values must be numbers, got {value!r}"
                ) from None

    return name, tuple(_number(value) for value in values.split(","))


def _sweep_main(argv: List[str]) -> int:
    """``repro sweep``: grid a config axis over the experiment suite."""
    parser = argparse.ArgumentParser(
        prog="repro sweep",
        parents=[engine_parent()],
        description=(
            "Run a config sweep: the same workload and experiments "
            "evaluated at every point of a grid over LabConfig fields, "
            "with one manifest per point plus a combined summary.  "
            "Artefacts unaffected by the swept fields are computed "
            "once and shared through the result cache."
        ),
    )
    parser.add_argument(
        "spec", metavar="SPEC", nargs="?", default=None,
        help="optional RunSpec JSON file to sweep (axes may extend it)",
    )
    parser.add_argument(
        "--axis", metavar="FIELD=V1,V2", action="append", default=None,
        help=(
            "sweep axis over a LabConfig field (repeatable; grids as "
            "the cartesian product)"
        ),
    )
    parser.add_argument(
        "--experiments", metavar="IDS", default=None,
        help=(
            "comma-separated experiment ids when no spec file is given "
            "(default: the nine paper artefacts)"
        ),
    )
    parser.add_argument(
        "--max-length", type=int, default=None,
        help="trace scale anchor when no spec file is given",
    )
    parser.add_argument(
        "--manifest-dir", metavar="DIR", default=DEFAULT_SWEEP_DIR,
        help=(
            "directory for per-point manifests and the sweep summary "
            f"(default: {DEFAULT_SWEEP_DIR})"
        ),
    )
    parser.add_argument(
        "--summary-out", metavar="PATH", default=None,
        help="override the JSON summary path",
    )
    parser.add_argument(
        "--journal", metavar="PATH", default=None,
        help=(
            f"journal path (default {DEFAULT_JOURNAL_NAME}; empty "
            "value to disable)"
        ),
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="replay journaled points instead of re-running them",
    )
    args = parser.parse_args(argv)

    from repro.spec import RunSpec, SpecError, SweepSpec, WorkloadSpec

    if args.spec is not None:
        spec, error_code = _load_spec(args.spec)
        if spec is None:
            return error_code
    else:
        experiments = (
            tuple(
                item for item in args.experiments.split(",") if item
            )
            if args.experiments
            else EXPERIMENT_IDS
        )
        spec = RunSpec(
            experiments=experiments,
            workload=WorkloadSpec(
                max_length=args.max_length, seed=args.seed
            ),
        )
    try:
        if args.axis:
            axes = dict(spec.sweep.axes) if spec.sweep is not None else {}
            for text in args.axis:
                name, values = _parse_axis(text)
                axes[name] = values
            import dataclasses

            spec = dataclasses.replace(
                spec, sweep=SweepSpec(axes=tuple(axes.items()))
            )
    except (SpecError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if spec.sweep is None:
        print(
            "error: nothing to sweep -- pass --axis FIELD=V1,V2 or a "
            "spec file with a sweep section",
            file=sys.stderr,
        )
        return 2

    # Sweeps journal by default: they are long enough to be worth
    # resuming, and each point checkpoints under its own run key.
    if args.journal is None and spec.engine.journal is None:
        import dataclasses

        spec = dataclasses.replace(
            spec,
            engine=dataclasses.replace(
                spec.engine, journal=DEFAULT_JOURNAL_NAME
            ),
        )
    spec = _engine_overrides(spec, args)
    return _execute_spec(
        spec,
        ["sweep", *argv],
        manifest_dir=args.manifest_dir or None,
        summary_out=args.summary_out,
        metrics_out=args.metrics_out,
        trace_out=args.trace_out,
    )


def _ingest_main(argv: List[str]) -> int:
    """``repro ingest``: convert foreign traces to native ``.bpt``."""
    from repro.trace.ingest import INGEST_FORMATS, ingest_file

    parser = argparse.ArgumentParser(
        prog="repro ingest",
        description=(
            "Validate foreign branch traces (CBP-style text, packed "
            "binary pc+taken records, or native .bpt) and spill them "
            "to the chunked BPT2 format the engine consumes, printing "
            "each trace's canonical content digest.  --emit-spec "
            "writes a ready-to-run RunSpec whose workload imports the "
            "ingested traces ('repro run SPEC' executes it)."
        ),
    )
    parser.add_argument(
        "traces", metavar="TRACE", nargs="+",
        help="foreign trace files to ingest",
    )
    parser.add_argument(
        "--format", choices=INGEST_FORMATS, default=None,
        help="declared input format (default: sniffed per file)",
    )
    parser.add_argument(
        "--out-dir", metavar="DIR", default=None,
        help=(
            "directory for the converted .bpt artefacts (default: "
            "next to each input file)"
        ),
    )
    parser.add_argument(
        "--chunk-branches", type=int, default=None,
        help="BPT2 spill window in branches (default: engine default)",
    )
    parser.add_argument(
        "--emit-spec", metavar="PATH", default=None,
        help="write a RunSpec importing the ingested traces to PATH",
    )
    parser.add_argument(
        "--experiments", metavar="IDS", default=None,
        help=(
            "comma-separated experiment ids for --emit-spec (default: "
            "the nine paper artefacts)"
        ),
    )
    args = parser.parse_args(argv)

    import os

    results = []
    for source in args.traces:
        out_path = None
        if args.out_dir is not None:
            os.makedirs(args.out_dir, exist_ok=True)
            out_path = os.path.join(
                args.out_dir, os.path.basename(source) + ".bpt"
            )
        try:
            result = ingest_file(
                source,
                out_path,
                format=args.format,
                chunk_branches=args.chunk_branches,
            )
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return error.exit_code
        results.append(result)
        print(
            f"{result.name}: {result.branches} branches "
            f"[{result.format}] {result.digest}"
        )
        if result.path != result.source_path:
            print(f"  -> {result.path}")

    if args.emit_spec:
        from repro.spec import ImportedSource, RunSpec, SpecError

        experiments = (
            tuple(item for item in args.experiments.split(",") if item)
            if args.experiments
            else EXPERIMENT_IDS
        )
        try:
            spec = RunSpec(
                experiments=experiments,
                workload=ImportedSource(
                    traces=tuple(
                        result.to_entry() for result in results
                    ),
                ),
            )
        except SpecError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        spec.to_file(args.emit_spec)
        print(
            f"run spec written to {args.emit_spec} ({spec.digest()})"
        )
    return 0


def _plan_main(argv: List[str]) -> int:
    """``repro plan SPEC``: print the task graph without running it."""
    parser = argparse.ArgumentParser(
        prog="repro plan",
        description=(
            "Expand a RunSpec into its task graph (traces, sims, "
            "experiments, renders; deduped across sweep points) and "
            "print it without executing anything."
        ),
    )
    parser.add_argument("spec", metavar="SPEC", help="RunSpec JSON file")
    args = parser.parse_args(argv)
    spec, error_code = _load_spec(args.spec)
    if spec is None:
        return error_code
    from repro.plan import build_plan

    try:
        plan = build_plan(spec)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return error.exit_code
    print(plan.describe())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "--version":
        print(version_string("repro"))
        return 0
    if argv and argv[0] == "run":
        return _run_main(argv[1:])
    if argv and argv[0] == "sweep":
        return _sweep_main(argv[1:])
    if argv and argv[0] == "plan":
        return _plan_main(argv[1:])
    if argv and argv[0] == "ingest":
        return _ingest_main(argv[1:])
    if argv and argv[0] == "serve":
        from repro.serve import main as serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "submit":
        from repro.client import main as submit_main

        return submit_main(argv[1:])
    if argv and argv[0] == "check":
        # Static analysis has its own argument set; dispatch before the
        # experiment parser sees it.
        from repro.check.cli import main as check_main

        return check_main(argv[1:])
    if argv and argv[0] == "cache":
        return _cache_main(argv[1:])
    if argv and argv[0] == "obs":
        from repro.obs.cli import main as obs_main

        return obs_main(argv[1:])
    args = _parser().parse_args(argv)
    requested: List[str] = []
    wants_manifest = False
    for item in args.experiments:
        if item in ("all", "report"):
            requested.extend(EXPERIMENT_IDS)
            wants_manifest = True
        elif item == "extensions":
            requested.extend(EXTENSION_IDS)
        elif item in EXPERIMENT_IDS or item in EXTENSION_IDS:
            requested.append(item)
        else:
            print(
                f"error: unknown experiment {item!r}; choose from "
                f"{', '.join(EXPERIMENT_IDS + EXTENSION_IDS)}, 'all', "
                "'report' or 'extensions'",
                file=sys.stderr,
            )
            return 2

    config = LabConfig()
    if args.gshare_history is not None:
        config = LabConfig(
            gshare_history_bits=args.gshare_history,
            gshare_pht_bits=args.gshare_history,
        )

    manifest_out = args.manifest_out
    if manifest_out is None and wants_manifest:
        manifest_out = DEFAULT_MANIFEST_NAME
    journal = args.journal
    if journal is None and (wants_manifest or args.resume):
        journal = DEFAULT_JOURNAL_NAME

    from repro.spec import spec_from_kwargs

    try:
        spec = spec_from_kwargs(
            requested,
            max_length=args.max_length,
            config=config,
            seed=args.seed,
            jobs=args.jobs,
            use_cache=not args.no_cache,
            cache_dir=args.cache_dir,
            retries=args.retries,
            task_timeout=args.task_timeout,
            fault_spec=fault_spec_from_args(args),
            journal_path=journal or None,
            resume=args.resume,
            chunk_branches=args.chunk_branches,
        )
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return error.exit_code

    if args.emit_spec:
        spec.to_file(args.emit_spec)
        print(f"run spec written to {args.emit_spec} ({spec.digest()})")
        return 0

    return _execute_spec(
        spec,
        argv,
        json_out=args.json,
        manifest_out=manifest_out or None,
        metrics_out=args.metrics_out,
        trace_out=args.trace_out,
    )


__all__ = [
    "DEFAULT_JOURNAL_NAME",
    "DEFAULT_MANIFEST_NAME",
    "DEFAULT_SEED",
    "DEFAULT_SWEEP_DIR",
    "EXIT_INTERRUPTED",
    "main",
]


if __name__ == "__main__":
    sys.exit(main())
