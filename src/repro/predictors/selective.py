"""The selective-history predictor of section 3.4.

A hypothetical global two-level predictor whose first-level history
contains only the oracle-chosen 1, 2 or 3 most important branches (tagged
per section 3.2).  Each history element is three-state -- taken,
not-taken, or *not in the path* of the last ``window`` branches -- so the
pattern space is 3**c.  The pattern selects a 2-bit saturating counter
(one table per static branch; the predictor is hypothetical and
interference-free), the counter MSB is the prediction, and the counter
trains on the outcome, exactly as in a global two-level predictor.

Two execution paths are provided and kept behaviourally identical (a
property test enforces this):

* the online :meth:`SelectiveHistoryPredictor.predict` /
  :meth:`~SelectiveHistoryPredictor.update` pair, which re-derives tag
  states by scanning a sliding window -- transparent but slow;
* :meth:`SelectiveHistoryPredictor.simulate`, which replays the
  precollected :class:`~repro.correlation.tagging.CorrelationData`
  per-branch -- the path every experiment uses.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Optional, Tuple

import numpy as np

from repro.correlation.selection import (
    Selection,
    SelectionConfig,
    select_for_trace,
)
from repro.correlation.tagging import (
    CorrelationData,
    STATE_ABSENT,
    STATE_NOT_TAKEN,
    STATE_TAKEN,
    TAG_BACKWARD,
    TAG_OCCURRENCE,
    TagKey,
    collect_correlation_data,
)
from repro.predictors.base import BranchPredictor
from repro.trace.trace import Trace


class SelectiveHistoryPredictor(BranchPredictor):
    """Oracle selective-history predictor (1, 2 or 3 branches).

    Args:
        num_branches: Selective-history size c (1, 2 or 3 in the paper).
        config: Oracle search parameters; ``config.window`` is the history
            depth n within which correlated branches are sought.
        counter_bits: Second-level counter width (2 in the paper).
    """

    name = "selective"
    #: simulate() replays the per-run oracle selections and refuses any
    #: trace but the fitted one, so the streaming fold cannot apply.
    windowable = False

    def __init__(
        self,
        num_branches: int = 3,
        config: SelectionConfig = SelectionConfig(),
        counter_bits: int = 2,
    ) -> None:
        if num_branches < 1:
            raise ValueError(f"num_branches must be >= 1, got {num_branches}")
        self._num_branches = num_branches
        self._config = config
        self._counter_max = (1 << counter_bits) - 1
        self._threshold = 1 << (counter_bits - 1)
        self._initial = self._threshold
        self._selections: Optional[Dict[int, Selection]] = None
        self._data: Optional[CorrelationData] = None
        # (pc, pattern) -> counter value
        self._counters: Dict[Tuple[int, int], int] = {}
        # Sliding window of (pc, taken, is_backward) for the online path.
        self._window_state: deque = deque(maxlen=config.window)
        self.name = f"selective-{num_branches}"

    @property
    def selections(self) -> Dict[int, Selection]:
        if self._selections is None:
            raise RuntimeError("predictor is not fitted; call fit() first")
        return self._selections

    # -- fitting ------------------------------------------------------------

    def fit(
        self,
        trace: Trace,
        data: Optional[CorrelationData] = None,
        selections: Optional[Dict[int, Selection]] = None,
    ) -> "SelectiveHistoryPredictor":
        """Run the oracle selection over ``trace``.

        Args:
            trace: The trace the predictor will be evaluated on (the
                oracle, like the paper's, sees the whole run).
            data: Optional precollected correlation data (reused across
                predictors by the experiment runner).
            selections: Optional precomputed oracle selections; when
                given, the per-branch search is skipped entirely.
        """
        if data is None:
            data = collect_correlation_data(trace, window=self._config.window)
        if selections is None:
            selections = select_for_trace(data, self._num_branches, self._config)
        self._selections = selections
        self._data = data
        return self

    # -- online path ---------------------------------------------------------

    def _tag_states(self, selected: Tuple[TagKey, ...]) -> Dict[TagKey, int]:
        """Derive the current state of each selected tag from the window.

        Scans the sliding window most-recent-first, applying the same
        tagging rules as the collector: occurrence numbers count from the
        current branch; backward counts are the number of loop-closing
        branches strictly between the tagged branch and now; the
        shallowest appearance wins.
        """
        states = {tag: STATE_ABSENT for tag in selected}
        wanted = set(selected)
        occurrence_counts: Dict[int, int] = {}
        backward_count = 0
        remaining = len(wanted)
        for pc, taken, is_backward in reversed(self._window_state):
            occurrence = occurrence_counts.get(pc, 0)
            occurrence_counts[pc] = occurrence + 1
            outcome_state = STATE_TAKEN if taken else STATE_NOT_TAKEN
            occ_tag = (TAG_OCCURRENCE, pc, occurrence)
            if occ_tag in wanted and states[occ_tag] == STATE_ABSENT:
                states[occ_tag] = outcome_state
                remaining -= 1
            bwd_tag = (TAG_BACKWARD, pc, backward_count)
            if bwd_tag in wanted and states[bwd_tag] == STATE_ABSENT:
                states[bwd_tag] = outcome_state
                remaining -= 1
            if remaining == 0:
                break
            backward_count += is_backward
        return states

    def _pattern(self, pc: int) -> int:
        selected = self.selections.get(pc)
        if selected is None or not selected.tags:
            return 0
        states = self._tag_states(selected.tags)
        pattern = 0
        for tag in selected.tags:
            pattern = pattern * 3 + states[tag]
        return pattern

    def predict(self, pc: int, target: int) -> bool:
        counter = self._counters.get((pc, self._pattern(pc)), self._initial)
        return counter >= self._threshold

    def update(self, pc: int, target: int, taken: bool) -> None:
        key = (pc, self._pattern(pc))
        value = self._counters.get(key, self._initial)
        if taken:
            if value < self._counter_max:
                self._counters[key] = value + 1
            else:
                self._counters[key] = value
        else:
            self._counters[key] = value - 1 if value > 0 else value
        self._window_state.append((pc, bool(taken), target < pc))

    # -- fast replay -----------------------------------------------------------

    def simulate(self, trace: Trace) -> np.ndarray:
        """Replay the fitted selections over ``trace`` with 2-bit counters.

        Fits first when needed.  Requires the trace to be the one the
        predictor was fitted on (the oracle selections are per-run).
        The counter replay runs through the batched
        :func:`~repro.sim.kernels_global.simulate_selective` kernel: one
        grouped chain over ``(branch, pattern)`` keys instead of a scalar
        loop per instance.
        """
        from repro.sim.kernels_global import simulate_selective

        if self._selections is None:
            self.fit(trace)
        if self._data.trace_length != len(trace):
            raise ValueError(
                "simulate() must replay the fitted trace: fitted length "
                f"{self._data.trace_length}, got {len(trace)}"
            )
        return simulate_selective(self, trace)

    def _simulate_scalar(self, trace: Trace) -> np.ndarray:
        """Scalar reference replay (the kernel's contract reference)."""
        if self._selections is None:
            self.fit(trace)
        data = self._data
        if data.trace_length != len(trace):
            raise ValueError(
                "simulate() must replay the fitted trace: fitted length "
                f"{data.trace_length}, got {len(trace)}"
            )
        correct = np.zeros(len(trace), dtype=bool)
        window = self._config.window
        counter_max = self._counter_max
        threshold = self._threshold
        initial = self._initial
        for pc, branch in data.branches.items():
            selection = self._selections[pc]
            outcomes = branch.outcomes
            if selection.tags:
                combined = np.zeros(branch.num_instances(), dtype=np.int64)
                for tag in selection.tags:
                    combined = combined * 3 + branch.state_vector(tag, window)
                patterns = combined.tolist()
            else:
                patterns = [0] * branch.num_instances()
            counters: Dict[int, int] = {}
            branch_correct = np.zeros(branch.num_instances(), dtype=bool)
            outcome_list = outcomes.tolist()
            for i, pattern in enumerate(patterns):
                value = counters.get(pattern, initial)
                taken = outcome_list[i]
                branch_correct[i] = (value >= threshold) == taken
                if taken:
                    if value < counter_max:
                        counters[pattern] = value + 1
                    else:
                        counters[pattern] = value
                else:
                    counters[pattern] = value - 1 if value > 0 else value
            correct[branch.trace_indices] = branch_correct
        return correct
