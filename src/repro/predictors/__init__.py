"""Branch predictors.

Every predictor the paper uses or references is implemented here:

* :mod:`~repro.predictors.counters` -- n-bit saturating up-down counters
  and pattern-history-table (PHT) storage.
* :mod:`~repro.predictors.static_` -- static schemes, including the
  paper's per-branch-majority "ideal static" predictor.
* :mod:`~repro.predictors.bimodal` -- Smith's 2-bit counter predictor.
* :mod:`~repro.predictors.twolevel` -- the Yeh/Patt two-level family
  (GAs, GAp, gshare, PAs, PAp) with configurable history and PHT sizes.
* :mod:`~repro.predictors.interference_free` -- interference-free gshare
  and PAs (one PHT per static branch), as used by the paper's analyses.
* :mod:`~repro.predictors.path` -- Nair-style path-history predictor.
* :mod:`~repro.predictors.loop` -- the loop predictor of section 4.1.1.
* :mod:`~repro.predictors.pattern` -- fixed-length-k and block-pattern
  predictors of section 4.1.2.
* :mod:`~repro.predictors.selective` -- the oracle selective-history
  predictor of section 3.4.
* :mod:`~repro.predictors.hybrid` -- McFarling chooser hybrids and the
  oracle per-branch combiners behind Tables 2 and 3.
* :mod:`~repro.predictors.profile_based` -- the section-2.2 related-work
  schemes: statically-determined PHTs (Sechrest/Young) and Chang's
  branch-classification hybrid.
"""

from repro.predictors.base import BranchPredictor, simulate
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.counters import CounterTable, SaturatingCounter
from repro.predictors.hybrid import ChooserHybrid, OracleCombiner
from repro.predictors.interference_free import (
    InterferenceFreeGshare,
    InterferenceFreePAs,
)
from repro.predictors.loop import LoopPredictor
from repro.predictors.path import PathBasedPredictor
from repro.predictors.pattern import (
    BlockPatternPredictor,
    FixedLengthPatternPredictor,
    best_fixed_length_correct,
)
from repro.predictors.profile_based import (
    BranchClassificationHybrid,
    StaticPhtGlobal,
    StaticPhtPAs,
)
from repro.predictors.skewed import SkewedPredictor
from repro.predictors.static_ import (
    AlwaysNotTakenPredictor,
    AlwaysTakenPredictor,
    BackwardTakenPredictor,
    IdealStaticPredictor,
    ProfileStaticPredictor,
)
from repro.predictors.twolevel import (
    GAgPredictor,
    GAsPredictor,
    GsharePredictor,
    PAgPredictor,
    PAsPredictor,
)

__all__ = [
    "AlwaysNotTakenPredictor",
    "AlwaysTakenPredictor",
    "BackwardTakenPredictor",
    "BimodalPredictor",
    "BlockPatternPredictor",
    "BranchClassificationHybrid",
    "BranchPredictor",
    "ChooserHybrid",
    "CounterTable",
    "FixedLengthPatternPredictor",
    "GAgPredictor",
    "GAsPredictor",
    "GsharePredictor",
    "IdealStaticPredictor",
    "InterferenceFreeGshare",
    "InterferenceFreePAs",
    "LoopPredictor",
    "OracleCombiner",
    "PAgPredictor",
    "PAsPredictor",
    "PathBasedPredictor",
    "ProfileStaticPredictor",
    "SaturatingCounter",
    "SkewedPredictor",
    "StaticPhtGlobal",
    "StaticPhtPAs",
    "best_fixed_length_correct",
    "simulate",
]
