"""Smith's bimodal predictor: a table of 2-bit saturating counters.

Each branch maps via the low bits of its address to a counter; the counter
MSB gives the prediction (Smith 81, section 2.1 of the paper).
"""

from __future__ import annotations

import numpy as np

from repro.predictors.base import BranchPredictor
from repro.predictors.counters import CounterTable
from repro.trace.trace import Trace


class BimodalPredictor(BranchPredictor):
    """Address-indexed saturating-counter predictor.

    Args:
        table_bits: log2 of the counter-table size (default 12 -> 4096
            counters).
        counter_bits: Counter width; 2 in the paper.
    """

    name = "bimodal"

    def __init__(self, table_bits: int = 12, counter_bits: int = 2) -> None:
        if table_bits < 0:
            raise ValueError(f"table_bits must be >= 0, got {table_bits}")
        self._mask = (1 << table_bits) - 1
        self._table = CounterTable(1 << table_bits, bits=counter_bits)
        self.name = f"bimodal-{table_bits}b"

    def _index(self, pc: int) -> int:
        # Drop the 4-byte alignment bits (standard address indexing).
        return (pc >> 2) & self._mask

    def predict(self, pc: int, target: int) -> bool:
        return self._table.predict(self._index(pc))

    def update(self, pc: int, target: int, taken: bool) -> None:
        self._table.update(self._index(pc), taken)

    def simulate(self, trace: Trace) -> np.ndarray:
        """Vectorised fast path (see :mod:`repro.sim.kernels`)."""
        from repro.sim.kernels import simulate_bimodal

        return simulate_bimodal(self, trace)
