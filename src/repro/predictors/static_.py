"""Static branch predictors.

The paper's reference point for "unpredictable by our methods" is the
*ideal static* predictor: for every branch, statically predict the
direction it takes most often during the run (section 4.1).  This is the
best any static predictor can do, hence "ideal"; it requires oracle
(whole-run) knowledge and is therefore fit from the trace itself.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.predictors.base import BranchPredictor
from repro.trace.stats import ideal_static_correct
from repro.trace.trace import Trace


class AlwaysTakenPredictor(BranchPredictor):
    """Predict every branch taken."""

    name = "always-taken"

    def predict(self, pc: int, target: int) -> bool:
        return True

    def update(self, pc: int, target: int, taken: bool) -> None:
        pass

    def simulate(self, trace: Trace) -> np.ndarray:
        return trace.taken.copy()


class AlwaysNotTakenPredictor(BranchPredictor):
    """Predict every branch not taken."""

    name = "always-not-taken"

    def predict(self, pc: int, target: int) -> bool:
        return False

    def update(self, pc: int, target: int, taken: bool) -> None:
        pass

    def simulate(self, trace: Trace) -> np.ndarray:
        return ~trace.taken


class BackwardTakenPredictor(BranchPredictor):
    """BTFNT: predict backward branches taken, forward branches not taken.

    Backward branches are overwhelmingly loop-closing and therefore
    usually taken; the heuristic is the classic static baseline (Smith 81).
    """

    name = "btfnt"

    def predict(self, pc: int, target: int) -> bool:
        return target < pc

    def update(self, pc: int, target: int, taken: bool) -> None:
        pass

    def simulate(self, trace: Trace) -> np.ndarray:
        return trace.is_backward == trace.taken


class ProfileStaticPredictor(BranchPredictor):
    """Static predictor driven by an explicit per-branch direction profile.

    Args:
        profile: Map from branch pc to the statically-predicted direction.
        default: Direction predicted for branches absent from the profile.
    """

    name = "profile-static"

    def __init__(self, profile: Dict[int, bool], default: bool = False) -> None:
        self._profile = dict(profile)
        self._default = default

    @classmethod
    def from_trace(cls, trace: Trace, default: bool = False) -> "ProfileStaticPredictor":
        """Build the majority-direction profile from a (training) trace."""
        profile = {
            pc: bool(outcomes.mean() >= 0.5)
            for pc, outcomes in trace.outcomes_by_pc().items()
        }
        return cls(profile, default=default)

    def predict(self, pc: int, target: int) -> bool:
        return self._profile.get(pc, self._default)

    def update(self, pc: int, target: int, taken: bool) -> None:
        pass


class IdealStaticPredictor(BranchPredictor):
    """The paper's "ideal" static predictor: per-branch run majority.

    Self-profiling: :meth:`simulate` computes the majority direction of
    each branch over the *same* trace it predicts, exactly as the paper
    defines it.  The online :meth:`predict` interface works after
    :meth:`fit` (or a prior :meth:`simulate`) has built the profile.
    """

    name = "ideal-static"
    #: simulate() re-profiles on whatever trace it is handed, so a
    #: window fold would use per-window majorities instead of the
    #: whole-run majority the paper defines.  The streaming path uses
    #: the dedicated count fold in ``repro.analysis.streamed`` instead.
    windowable = False

    def __init__(self) -> None:
        self._profile: Optional[Dict[int, bool]] = None

    def fit(self, trace: Trace) -> "IdealStaticPredictor":
        """Build the majority profile from ``trace``; returns self."""
        self._profile = {
            pc: bool(outcomes.mean() >= 0.5)
            for pc, outcomes in trace.outcomes_by_pc().items()
        }
        return self

    def predict(self, pc: int, target: int) -> bool:
        if self._profile is None:
            raise RuntimeError(
                "IdealStaticPredictor.predict requires fit() or simulate() first"
            )
        return self._profile.get(pc, False)

    def update(self, pc: int, target: int, taken: bool) -> None:
        pass

    def simulate(self, trace: Trace) -> np.ndarray:
        self.fit(trace)
        return ideal_static_correct(trace)
