"""The Yeh/Patt two-level adaptive predictor family.

Two levels of history: a branch-history register (global or per-address)
records recent outcomes; a pattern history table (PHT) of 2-bit saturating
counters records the likely direction per history pattern.

Variants implemented:

* :class:`GAsPredictor` -- one global history register, PHT selected by
  branch-address bits, pattern bits index within the PHT.
* :class:`GsharePredictor` -- McFarling's variant: global history XORed
  with the branch address indexes a single PHT (better PHT utilisation).
* :class:`PAsPredictor` -- per-address history registers (a branch history
  table indexed by address bits), PHT selected by address bits.
* :class:`GAgPredictor` / :class:`PAgPredictor` -- the shared-PHT
  degenerate points of the Yeh/Patt taxonomy.

The taxonomy's per-address-PHT points (GAp, PAp) are the idealised
interference-free predictors of
:mod:`repro.predictors.interference_free`: one PHT per static branch is
exactly a per-address second level with an unbounded table.
"""

from __future__ import annotations

from typing import Optional

from repro.predictors.base import BranchPredictor

import numpy as np

from repro.trace.trace import Trace


class GsharePredictor(BranchPredictor):
    """McFarling's gshare predictor.

    Args:
        history_bits: Global history register length (the paper's
            reference gshare uses a 16-branch history).
        pht_bits: log2 of the PHT size; defaults to ``history_bits`` so
            the full history participates in the index.
        counter_bits: PHT counter width.
    """

    name = "gshare"

    def __init__(
        self,
        history_bits: int = 16,
        pht_bits: Optional[int] = None,
        counter_bits: int = 2,
    ) -> None:
        if history_bits < 0:
            raise ValueError(f"history_bits must be >= 0, got {history_bits}")
        if pht_bits is None:
            pht_bits = history_bits
        if pht_bits < 1:
            raise ValueError(f"pht_bits must be >= 1, got {pht_bits}")
        self._history_bits = history_bits
        self._history_mask = (1 << history_bits) - 1
        self._pht_mask = (1 << pht_bits) - 1
        self._counter_max = (1 << counter_bits) - 1
        self._counter_threshold = 1 << (counter_bits - 1)
        initial = self._counter_threshold
        dtype = np.int8 if counter_bits <= 7 else np.int16
        self._pht = np.full(1 << pht_bits, initial, dtype=dtype)
        self._history = 0
        self.name = f"gshare-{history_bits}h-{pht_bits}p"

    @property
    def history_bits(self) -> int:
        return self._history_bits

    def _index(self, pc: int) -> int:
        # Instruction addresses are 4-byte aligned; drop the alignment
        # bits so the whole PHT is usable (standard gshare indexing).
        return (self._history ^ (pc >> 2)) & self._pht_mask

    def predict(self, pc: int, target: int) -> bool:
        return bool(self._pht[self._index(pc)] >= self._counter_threshold)

    def update(self, pc: int, target: int, taken: bool) -> None:
        index = self._index(pc)
        value = self._pht[index]
        if taken:
            if value < self._counter_max:
                self._pht[index] = value + 1
        elif value > 0:
            self._pht[index] = value - 1
        self._history = ((self._history << 1) | int(taken)) & self._history_mask

    def simulate(self, trace: Trace) -> np.ndarray:
        """Vectorised fast path (see :mod:`repro.sim.kernels_global`)."""
        from repro.sim.kernels_global import MAX_INDEX_BITS, simulate_gshare

        if max(self._history_bits, self._pht_mask.bit_length()) > MAX_INDEX_BITS:
            return self._simulate_scalar(trace)
        return simulate_gshare(self, trace)

    def _simulate_scalar(self, trace: Trace) -> np.ndarray:
        """Scalar reference loop (kernel fallback for extreme widths)."""
        n = len(trace)
        correct = np.zeros(n, dtype=bool)
        pht = self._pht.tolist()
        history = self._history
        history_mask = self._history_mask
        pht_mask = self._pht_mask
        counter_max = self._counter_max
        threshold = self._counter_threshold
        pcs = (trace.pc >> 2).tolist()
        takens = trace.taken.tolist()
        for i in range(n):
            pc = pcs[i]
            taken = takens[i]
            index = (history ^ pc) & pht_mask
            value = pht[index]
            correct[i] = (value >= threshold) == taken
            if taken:
                if value < counter_max:
                    pht[index] = value + 1
            elif value > 0:
                pht[index] = value - 1
            history = ((history << 1) | taken) & history_mask
        self._pht = np.asarray(pht, dtype=self._pht.dtype)
        self._history = history
        return correct


class GAsPredictor(BranchPredictor):
    """Global-history two-level predictor with address-selected PHTs.

    Args:
        history_bits: Global history register length.
        pht_select_bits: log2 of the number of PHTs; the low address bits
            select the PHT, the history pattern indexes within it.
        counter_bits: PHT counter width.
    """

    name = "gas"

    def __init__(
        self,
        history_bits: int = 12,
        pht_select_bits: int = 4,
        counter_bits: int = 2,
    ) -> None:
        if history_bits < 0:
            raise ValueError(f"history_bits must be >= 0, got {history_bits}")
        if pht_select_bits < 0:
            raise ValueError(
                f"pht_select_bits must be >= 0, got {pht_select_bits}"
            )
        self._history_bits = history_bits
        self._history_mask = (1 << history_bits) - 1
        self._select_mask = (1 << pht_select_bits) - 1
        self._counter_max = (1 << counter_bits) - 1
        self._counter_threshold = 1 << (counter_bits - 1)
        initial = self._counter_threshold
        dtype = np.int8 if counter_bits <= 7 else np.int16
        self._pht = np.full(
            (1 << pht_select_bits, 1 << history_bits), initial, dtype=dtype
        )
        self._history = 0
        self.name = f"gas-{history_bits}h-{pht_select_bits}s"

    def predict(self, pc: int, target: int) -> bool:
        counter = self._pht[(pc >> 2) & self._select_mask, self._history]
        return bool(counter >= self._counter_threshold)

    def update(self, pc: int, target: int, taken: bool) -> None:
        select = (pc >> 2) & self._select_mask
        value = self._pht[select, self._history]
        if taken:
            if value < self._counter_max:
                self._pht[select, self._history] = value + 1
        elif value > 0:
            self._pht[select, self._history] = value - 1
        self._history = ((self._history << 1) | int(taken)) & self._history_mask

    def simulate(self, trace: Trace) -> np.ndarray:
        """Vectorised fast path (see :mod:`repro.sim.kernels_global`)."""
        from repro.sim.kernels_global import MAX_INDEX_BITS, simulate_gas

        select_bits = self._select_mask.bit_length()
        if self._history_bits + select_bits > MAX_INDEX_BITS:
            return super().simulate(trace)
        return simulate_gas(self, trace)


class PAsPredictor(BranchPredictor):
    """Per-address two-level predictor.

    The first level is a branch history table (BHT) of per-branch shift
    registers indexed by the low bits of the address; the second level is
    a set of PHTs also selected by address bits (section 2.1).

    Args:
        history_bits: Per-branch history register length.
        bht_bits: log2 of the BHT entry count (address-indexed; aliasing
            between branches that share low address bits is modelled, as
            in a real implementation).
        pht_select_bits: log2 of the number of PHTs.
        counter_bits: PHT counter width.
    """

    name = "pas"

    def __init__(
        self,
        history_bits: int = 12,
        bht_bits: int = 12,
        pht_select_bits: int = 4,
        counter_bits: int = 2,
    ) -> None:
        if history_bits < 0:
            raise ValueError(f"history_bits must be >= 0, got {history_bits}")
        if bht_bits < 0:
            raise ValueError(f"bht_bits must be >= 0, got {bht_bits}")
        self._history_bits = history_bits
        self._history_mask = (1 << history_bits) - 1
        self._bht_mask = (1 << bht_bits) - 1
        self._select_mask = (1 << pht_select_bits) - 1
        self._counter_max = (1 << counter_bits) - 1
        self._counter_threshold = 1 << (counter_bits - 1)
        initial = self._counter_threshold
        dtype = np.int8 if counter_bits <= 7 else np.int16
        self._pht = np.full(
            (1 << pht_select_bits, 1 << history_bits), initial, dtype=dtype
        )
        self._bht = np.zeros(1 << bht_bits, dtype=np.int64)
        self.name = f"pas-{history_bits}h-{bht_bits}b"

    @property
    def history_bits(self) -> int:
        return self._history_bits

    def predict(self, pc: int, target: int) -> bool:
        history = self._bht[(pc >> 2) & self._bht_mask]
        counter = self._pht[(pc >> 2) & self._select_mask, history]
        return bool(counter >= self._counter_threshold)

    def update(self, pc: int, target: int, taken: bool) -> None:
        bht_index = (pc >> 2) & self._bht_mask
        history = self._bht[bht_index]
        select = (pc >> 2) & self._select_mask
        value = self._pht[select, history]
        if taken:
            if value < self._counter_max:
                self._pht[select, history] = value + 1
        elif value > 0:
            self._pht[select, history] = value - 1
        self._bht[bht_index] = ((history << 1) | int(taken)) & self._history_mask

    def simulate(self, trace: Trace) -> np.ndarray:
        """Vectorised fast path (see :mod:`repro.sim.kernels_global`)."""
        from repro.sim.kernels_global import MAX_INDEX_BITS, simulate_pas

        select_bits = self._select_mask.bit_length()
        if self._history_bits + select_bits > MAX_INDEX_BITS:
            return self._simulate_scalar(trace)
        return simulate_pas(self, trace)

    def _simulate_scalar(self, trace: Trace) -> np.ndarray:
        """Scalar reference loop (kernel fallback for extreme widths)."""
        n = len(trace)
        correct = np.zeros(n, dtype=bool)
        select_count = self._pht.shape[0]
        pht = [row.tolist() for row in self._pht]
        bht = self._bht.tolist()
        history_mask = self._history_mask
        bht_mask = self._bht_mask
        select_mask = self._select_mask
        counter_max = self._counter_max
        threshold = self._counter_threshold
        pcs = (trace.pc >> 2).tolist()
        takens = trace.taken.tolist()
        for i in range(n):
            pc = pcs[i]
            taken = takens[i]
            history = bht[pc & bht_mask]
            row = pht[pc & select_mask]
            value = row[history]
            correct[i] = (value >= threshold) == taken
            if taken:
                if value < counter_max:
                    row[history] = value + 1
            elif value > 0:
                row[history] = value - 1
            bht[pc & bht_mask] = ((history << 1) | taken) & history_mask
        self._pht = np.asarray(pht, dtype=self._pht.dtype).reshape(
            select_count, -1
        )
        self._bht = np.asarray(bht, dtype=np.int64)
        return correct


class GAgPredictor(GAsPredictor):
    """GAg: one global history register, one shared PHT.

    The degenerate point of the Yeh/Patt taxonomy's global side: no
    address bits select the PHT, so all branches share every counter.
    Equivalent to :class:`GAsPredictor` with zero select bits.
    """

    name = "gag"

    def __init__(self, history_bits: int = 12, counter_bits: int = 2) -> None:
        super().__init__(
            history_bits=history_bits,
            pht_select_bits=0,
            counter_bits=counter_bits,
        )
        self.name = f"gag-{history_bits}h"


class PAgPredictor(PAsPredictor):
    """PAg: per-address history registers, one shared PHT.

    Per-branch first-level history with a single second-level table: the
    pattern alone selects the counter, so branches with the same local
    pattern interfere -- the configuration Yeh/Patt contrast with PAs.
    """

    name = "pag"

    def __init__(
        self,
        history_bits: int = 12,
        bht_bits: int = 12,
        counter_bits: int = 2,
    ) -> None:
        super().__init__(
            history_bits=history_bits,
            bht_bits=bht_bits,
            pht_select_bits=0,
            counter_bits=counter_bits,
        )
        self.name = f"pag-{history_bits}h-{bht_bits}b"
