"""Saturating up-down counters and pattern history tables.

Smith's 2-bit saturating counter is the second-level storage of every
adaptive predictor in the paper: the counter increments (saturating) when
the branch is taken, decrements when not taken, and predicts taken when its
most-significant bit is set.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np


class SaturatingCounter:
    """A single n-bit saturating up-down counter.

    The default width of 2 bits matches the paper.  A counter of width
    ``bits`` saturates at ``2**bits - 1`` and predicts taken when its value
    is at least ``2**(bits-1)`` (MSB set).

    Args:
        bits: Counter width in bits; must be >= 1.
        initial: Starting value.  The paper does not state an initial
            value; we default to weakly-taken (``2**(bits-1)``), the
            common simulator choice -- most branches are taken-biased,
            and on scaled-down traces cold counters matter.
    """

    __slots__ = ("_bits", "_max", "_threshold", "value")

    def __init__(self, bits: int = 2, initial: Optional[int] = None) -> None:
        if bits < 1:
            raise ValueError(f"counter width must be >= 1, got {bits}")
        self._bits = bits
        self._max = (1 << bits) - 1
        self._threshold = 1 << (bits - 1)
        if initial is None:
            initial = self._threshold
        if not 0 <= initial <= self._max:
            raise ValueError(
                f"initial value {initial} out of range [0, {self._max}]"
            )
        self.value = initial

    @property
    def bits(self) -> int:
        return self._bits

    @property
    def max_value(self) -> int:
        return self._max

    def predict(self) -> bool:
        """Predict taken iff the most-significant bit is set."""
        return self.value >= self._threshold

    def update(self, taken: bool) -> None:
        """Increment on taken, decrement on not-taken, saturating."""
        if taken:
            if self.value < self._max:
                self.value += 1
        elif self.value > 0:
            self.value -= 1

    def is_saturated(self) -> bool:
        return self.value in (0, self._max)

    def __repr__(self) -> str:
        return f"SaturatingCounter(bits={self._bits}, value={self.value})"


class CounterTable:
    """A fixed-size array of n-bit saturating counters (a PHT).

    Backed by a numpy ``int8``/``int16`` array; indexing is the caller's
    business (branch address bits, history pattern, xor of both, ...).
    """

    __slots__ = ("_bits", "_max", "_threshold", "_table")

    def __init__(self, size: int, bits: int = 2, initial: Optional[int] = None) -> None:
        if size < 1:
            raise ValueError(f"table size must be >= 1, got {size}")
        if bits < 1:
            raise ValueError(f"counter width must be >= 1, got {bits}")
        self._bits = bits
        self._max = (1 << bits) - 1
        self._threshold = 1 << (bits - 1)
        if initial is None:
            initial = self._threshold
        if not 0 <= initial <= self._max:
            raise ValueError(f"initial value {initial} out of range")
        dtype = np.int8 if bits <= 7 else np.int16
        self._table = np.full(size, initial, dtype=dtype)

    def __len__(self) -> int:
        return len(self._table)

    @property
    def bits(self) -> int:
        return self._bits

    @property
    def max_value(self) -> int:
        return self._max

    @property
    def threshold(self) -> int:
        """Counter values at or above this predict taken (MSB set)."""
        return self._threshold

    @property
    def raw(self) -> np.ndarray:
        """The backing counter array (mutable; used by the sim kernels)."""
        return self._table

    def predict(self, index: int) -> bool:
        """Prediction of the counter at ``index``."""
        return bool(self._table[index] >= self._threshold)

    def update(self, index: int, taken: bool) -> None:
        """Train the counter at ``index`` with the resolved outcome."""
        value = self._table[index]
        if taken:
            if value < self._max:
                self._table[index] = value + 1
        elif value > 0:
            self._table[index] = value - 1

    def value(self, index: int) -> int:
        return int(self._table[index])

    def fill(self, value: int) -> None:
        """Reset every counter to ``value``."""
        if not 0 <= value <= self._max:
            raise ValueError(f"value {value} out of range [0, {self._max}]")
        self._table[:] = value


class SparseCounterBank:
    """An unbounded dict-backed bank of counters keyed by arbitrary keys.

    Interference-free predictors give every static branch its own PHT; a
    dense array per branch (2^16 counters for a 16-bit history) would be
    wasteful, and the paper's "perfect BTB" structures are unbounded maps.
    Missing keys behave as freshly-initialised counters.
    """

    __slots__ = ("_bits", "_max", "_threshold", "_initial", "_counters")

    def __init__(self, bits: int = 2, initial: Optional[int] = None) -> None:
        if bits < 1:
            raise ValueError(f"counter width must be >= 1, got {bits}")
        self._bits = bits
        self._max = (1 << bits) - 1
        self._threshold = 1 << (bits - 1)
        self._initial = self._threshold if initial is None else initial
        if not 0 <= self._initial <= self._max:
            raise ValueError(f"initial value {self._initial} out of range")
        self._counters: Dict[object, int] = {}

    def __len__(self) -> int:
        return len(self._counters)

    def predict(self, key: object) -> bool:
        return self._counters.get(key, self._initial) >= self._threshold

    def update(self, key: object, taken: bool) -> None:
        value = self._counters.get(key, self._initial)
        if taken:
            if value < self._max:
                self._counters[key] = value + 1
            else:
                self._counters[key] = value
        else:
            self._counters[key] = value - 1 if value > 0 else value

    def value(self, key: object) -> int:
        return self._counters.get(key, self._initial)
