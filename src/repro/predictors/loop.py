"""The loop predictor of section 4.1.1.

For-type branches are taken ``n`` times then not-taken once; while-type
branches are not-taken ``n`` times then taken once.  The predictor makes
``n`` predictions in a row of the body direction, then a single prediction
of the exit direction, where ``n`` is the length of the previous run of
body-direction outcomes.  A direction bit distinguishes for-type from
while-type, trip counts are capped below 256, and all state lives in a
perfect (unbounded) BTB so interference cannot pollute the
classification -- all as specified in the paper.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.predictors.base import BranchPredictor
from repro.trace.trace import Trace

#: The paper assumes loop trip counts below 256; longer runs saturate.
MAX_TRIP_COUNT = 255


class _LoopEntry:
    """Per-branch loop-predictor state (one perfect-BTB entry)."""

    __slots__ = ("direction", "expected", "run_length", "opposite_streak")

    def __init__(self, first_outcome: bool) -> None:
        # The body direction is guessed from the first observed outcome
        # and flipped if the "exit" direction ever repeats -- a real loop
        # exits exactly once, so a streak of two opposite outcomes means
        # the direction bit was set wrong (e.g. the trace started at the
        # loop's exit iteration).
        self.direction = first_outcome
        self.expected = MAX_TRIP_COUNT  # unknown trip count: keep predicting body
        self.run_length = 1
        self.opposite_streak = 0

    def predict(self) -> bool:
        # A saturated expected count means "unknown or >= 256": keep
        # predicting the body direction and accept missing the exit.
        if self.expected >= MAX_TRIP_COUNT or self.run_length < self.expected:
            return self.direction
        return not self.direction

    def update(self, taken: bool) -> None:
        if taken == self.direction:
            if self.run_length < MAX_TRIP_COUNT:
                self.run_length += 1
            self.opposite_streak = 0
        else:
            self.opposite_streak += 1
            if self.opposite_streak >= 2:
                # Two consecutive exit-direction outcomes: not loop
                # behaviour for this direction bit.  Re-learn with the
                # opposite body direction.
                self.direction = not self.direction
                self.expected = MAX_TRIP_COUNT
                self.run_length = min(self.opposite_streak, MAX_TRIP_COUNT)
                self.opposite_streak = 0
            else:
                # Loop exit: the completed run length becomes the
                # expected trip count for the next execution of the loop.
                self.expected = self.run_length
                self.run_length = 0


class LoopPredictor(BranchPredictor):
    """Loop-type branch predictor with a perfect BTB.

    State is one :class:`_LoopEntry` per static branch, keyed by branch
    address in an unbounded dict (the paper's perfect BTB).
    """

    name = "loop"

    def __init__(self) -> None:
        self._entries: Dict[int, _LoopEntry] = {}

    def predict(self, pc: int, target: int) -> bool:
        entry = self._entries.get(pc)
        if entry is None:
            # No history: predict taken, the common bias for loop-closing
            # branches.
            return True
        return entry.predict()

    def update(self, pc: int, target: int, taken: bool) -> None:
        entry = self._entries.get(pc)
        if entry is None:
            self._entries[pc] = _LoopEntry(taken)
        else:
            entry.update(taken)

    def simulate(self, trace: Trace) -> np.ndarray:
        """Run-length fast path (see :mod:`repro.sim.kernels`)."""
        from repro.sim.kernels import simulate_loop

        return simulate_loop(self, trace)

    def btb_size(self) -> int:
        """Number of perfect-BTB entries allocated so far."""
        return len(self._entries)
