"""Hybrid predictors.

Two kinds:

* :class:`ChooserHybrid` -- McFarling's implementable hybrid: two
  component predictors and a table of 2-bit chooser counters that learns,
  per branch-address index, which component to trust.  Included because
  the paper motivates its analysis with "the best performing branch
  predictors today are hybrid predictors".
* :class:`OracleCombiner` -- the paper's *analysis* hybrid: a
  hypothetical predictor that uses component A for exactly those static
  branches where A beats component B over the whole run, and B elsewhere.
  Tables 2 and 3 ("gshare w/ Corr", "PAs w/ Loop") are built this way;
  it operates on per-branch correctness bitmaps rather than online.
"""

from __future__ import annotations

import numpy as np

from repro.predictors.base import BranchPredictor
from repro.predictors.counters import CounterTable
from repro.trace.trace import Trace


class ChooserHybrid(BranchPredictor):
    """McFarling combining predictor.

    Args:
        component_a: First predictor (selected when the chooser counter
            MSB is clear).
        component_b: Second predictor (selected when it is set).
        chooser_bits: log2 of the chooser table size (indexed by branch
            address).
        counter_bits: Chooser counter width.
    """

    name = "hybrid"

    def __init__(
        self,
        component_a: BranchPredictor,
        component_b: BranchPredictor,
        chooser_bits: int = 12,
        counter_bits: int = 2,
    ) -> None:
        self._a = component_a
        self._b = component_b
        self._mask = (1 << chooser_bits) - 1
        self._chooser = CounterTable(1 << chooser_bits, bits=counter_bits)
        self.name = f"hybrid({component_a.name},{component_b.name})"

    def predict(self, pc: int, target: int) -> bool:
        if self._chooser.predict((pc >> 2) & self._mask):
            return self._b.predict(pc, target)
        return self._a.predict(pc, target)

    def update(self, pc: int, target: int, taken: bool) -> None:
        prediction_a = self._a.predict(pc, target)
        prediction_b = self._b.predict(pc, target)
        # Train the chooser only when the components disagree: move
        # toward the component that was right.
        if prediction_a != prediction_b:
            self._chooser.update((pc >> 2) & self._mask, prediction_b == taken)
        self._a.update(pc, target, taken)
        self._b.update(pc, target, taken)


class OracleCombiner:
    """Whole-run per-branch oracle combination of two predictors.

    The paper's hypothetical "gshare w/ Corr" predictor "uses the 1-branch
    selective history predictor for branches where it achieves a higher
    accuracy than gshare.  Otherwise, gshare is used."  Given the
    per-branch correctness bitmaps of both components over the same trace,
    the combination is a pure selection per static branch.
    """

    @staticmethod
    def combine(
        trace: Trace,
        primary_correct: np.ndarray,
        alternative_correct: np.ndarray,
    ) -> np.ndarray:
        """Per-branch oracle choice between two correctness bitmaps.

        Args:
            trace: The trace both bitmaps were produced from.
            primary_correct: Bitmap of the default component (e.g. gshare).
            alternative_correct: Bitmap of the challenger (e.g. the
                1-branch selective predictor); used only for static
                branches where it is *strictly* more accurate.

        Returns:
            The combined correctness bitmap.
        """
        if len(primary_correct) != len(trace) or len(alternative_correct) != len(trace):
            raise ValueError("bitmaps must align with the trace")
        combined = primary_correct.copy()
        for _pc, indices in trace.indices_by_pc().items():
            if alternative_correct[indices].sum() > primary_correct[indices].sum():
                combined[indices] = alternative_correct[indices]
        return combined

    @staticmethod
    def combine_with_mask(
        trace: Trace,
        primary_correct: np.ndarray,
        alternative_correct: np.ndarray,
        use_alternative: set,
    ) -> np.ndarray:
        """Combine using an explicit set of branch addresses.

        Table 3's "PAs w/ Loop" uses the loop predictor for all branches
        *classified* as loop-type (section 4.1), not for all branches
        where the loop predictor happens to win, so the caller supplies
        the membership set.
        """
        combined = primary_correct.copy()
        for pc, indices in trace.indices_by_pc().items():
            if pc in use_alternative:
                combined[indices] = alternative_correct[indices]
        return combined
