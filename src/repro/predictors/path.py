"""Nair-style path-based predictor.

Nair proposed indexing the PHT with a hash of the *addresses* of the last
few branches (the path) instead of their outcomes (the pattern).  The
paper cites this (section 2.1) as exploiting in-path correlation more
directly: the path identifies *which* branches led here, not just how they
resolved.  Included as the path-history point of comparison for the
in-path correlation analysis.
"""

from __future__ import annotations

import numpy as np

from repro.predictors.base import BranchPredictor
from repro.trace.trace import Trace


class PathBasedPredictor(BranchPredictor):
    """Two-level predictor indexed by a hashed path history.

    The path register keeps the low ``bits_per_address`` bits of the last
    ``depth`` control-flow destinations, concatenated into a shift
    register; the register XORed with the current branch address selects a
    2-bit counter in the PHT.

    Args:
        depth: Number of recent path elements in the register.
        bits_per_address: Address bits captured per path element (Nair's
            scheme truncates addresses; full addresses would need an
            impractically wide register -- the imperfect-path
            representation the paper mentions).
        pht_bits: log2 of the PHT size.
        counter_bits: Counter width.
    """

    name = "path"

    def __init__(
        self,
        depth: int = 8,
        bits_per_address: int = 2,
        pht_bits: int = 16,
        counter_bits: int = 2,
    ) -> None:
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        if bits_per_address < 1:
            raise ValueError(
                f"bits_per_address must be >= 1, got {bits_per_address}"
            )
        self._bits_per_address = bits_per_address
        self._addr_mask = (1 << bits_per_address) - 1
        self._register_mask = (1 << (bits_per_address * depth)) - 1
        self._pht_mask = (1 << pht_bits) - 1
        self._counter_max = (1 << counter_bits) - 1
        self._threshold = 1 << (counter_bits - 1)
        initial = self._threshold
        self._pht = np.full(1 << pht_bits, initial, dtype=np.int8)
        self._path_register = 0
        self.name = f"path-{depth}d-{bits_per_address}b"

    def _index(self, pc: int) -> int:
        return (self._path_register ^ (pc >> 2)) & self._pht_mask

    def _shift_path(self, pc: int, target: int, taken: bool) -> None:
        # The path records where control went: the taken target or the
        # fall-through, with alignment bits dropped.
        element = ((target >> 2) if taken else (pc >> 2) + 1) & self._addr_mask
        self._path_register = (
            (self._path_register << self._bits_per_address) | element
        ) & self._register_mask

    def predict(self, pc: int, target: int) -> bool:
        return bool(self._pht[self._index(pc)] >= self._threshold)

    def update(self, pc: int, target: int, taken: bool) -> None:
        index = self._index(pc)
        value = self._pht[index]
        if taken:
            if value < self._counter_max:
                self._pht[index] = value + 1
        elif value > 0:
            self._pht[index] = value - 1
        self._shift_path(pc, target, taken)

    def simulate(self, trace: Trace) -> np.ndarray:
        """Tight-loop fast path; state transitions match predict/update."""
        n = len(trace)
        correct = np.zeros(n, dtype=bool)
        pht = self._pht.tolist()
        pht_mask = self._pht_mask
        addr_mask = self._addr_mask
        register_mask = self._register_mask
        bits = self._bits_per_address
        counter_max = self._counter_max
        threshold = self._threshold
        path_register = self._path_register
        pcs = (trace.pc >> 2).tolist()
        targets = trace.target.tolist()
        takens = trace.taken.tolist()
        for i in range(n):
            pc = pcs[i]
            taken = takens[i]
            index = (path_register ^ pc) & pht_mask  # pcs pre-shifted
            value = pht[index]
            correct[i] = (value >= threshold) == taken
            if taken:
                if value < counter_max:
                    pht[index] = value + 1
            elif value > 0:
                pht[index] = value - 1
            element = ((targets[i] >> 2) if taken else pc + 1) & addr_mask
            path_register = ((path_register << bits) | element) & register_mask
        self._pht = np.asarray(pht, dtype=np.int8)
        self._path_register = path_register
        return correct
