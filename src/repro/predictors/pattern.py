"""Repeating-pattern predictors of section 4.1.2.

Two subsets:

* **Fixed-length patterns** -- a branch repeating an arbitrary outcome
  pattern of length ``k`` has the same outcome as ``k`` executions ago.
  The paper simulates 32 predictors (k = 1..32) and scores each branch by
  the best of them.
* **Block patterns** -- taken ``n`` times, then not-taken ``m`` times,
  repeating.  The predictor tracks the previous run length of each
  direction in a perfect BTB and predicts a run of the same length.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.predictors.base import BranchPredictor
from repro.trace.trace import Trace

#: Largest fixed pattern length the paper examines.
MAX_PATTERN_LENGTH = 32

#: Run lengths are capped below 256, as in the loop predictor.
MAX_RUN_LENGTH = 255


class FixedLengthPatternPredictor(BranchPredictor):
    """Predict the same direction the branch took ``k`` executions ago.

    Per-branch outcome queues live in a perfect BTB (unbounded dict).
    Until ``k`` outcomes have been observed for a branch, the predictor
    falls back to predicting taken.

    Args:
        k: Pattern length; 1 <= k <= :data:`MAX_PATTERN_LENGTH`.
    """

    name = "fixed-pattern"

    def __init__(self, k: int) -> None:
        if not 1 <= k <= MAX_PATTERN_LENGTH:
            raise ValueError(
                f"pattern length must be in [1, {MAX_PATTERN_LENGTH}], got {k}"
            )
        self._k = k
        # pc -> (ring buffer of the last k outcomes, next write position,
        #        count of outcomes seen)
        self._state: Dict[int, Tuple[list, int, int]] = {}
        self.name = f"fixed-{k}"

    @property
    def k(self) -> int:
        return self._k

    def predict(self, pc: int, target: int) -> bool:
        state = self._state.get(pc)
        if state is None or state[2] < self._k:
            return True
        ring, position, _count = state
        # The outcome from exactly k executions ago is the next slot to be
        # overwritten.
        return ring[position]

    def update(self, pc: int, target: int, taken: bool) -> None:
        state = self._state.get(pc)
        if state is None:
            ring = [False] * self._k
            ring[0] = taken
            self._state[pc] = (ring, 1 % self._k, 1)
            return
        ring, position, count = state
        ring[position] = taken
        self._state[pc] = (ring, (position + 1) % self._k, count + 1)

    def simulate(self, trace: Trace) -> np.ndarray:
        """Shift-compare fast path (see :mod:`repro.sim.kernels`)."""
        from repro.sim.kernels import simulate_fixed_pattern

        return simulate_fixed_pattern(self, trace)


def fixed_length_correct(trace: Trace, k: int) -> np.ndarray:
    """Vectorised correctness bitmap of the fixed-length-``k`` predictor.

    For each static branch, prediction i (i >= k) is outcome i-k; the
    first k predictions fall back to taken.  Equivalent to simulating
    :class:`FixedLengthPatternPredictor` but runs as numpy comparisons.
    """
    correct = np.zeros(len(trace), dtype=bool)
    for indices in trace.indices_by_pc().values():
        outcomes = trace.taken[indices]
        branch_correct = np.empty(len(outcomes), dtype=bool)
        branch_correct[:k] = outcomes[:k]  # fallback: predict taken
        if len(outcomes) > k:
            branch_correct[k:] = outcomes[k:] == outcomes[:-k]
        correct[indices] = branch_correct
    return correct


def best_fixed_length_correct(
    trace: Trace, max_k: int = MAX_PATTERN_LENGTH
) -> np.ndarray:
    """Best-of-k fixed-length correctness, per static branch.

    The paper runs all 32 fixed-length predictors and uses, for each
    branch, the accuracy of the best one.  Returns the correctness bitmap
    where each branch's instances use its individually best ``k``.
    """
    correct = np.zeros(len(trace), dtype=bool)
    for pc, indices in trace.indices_by_pc().items():
        outcomes = trace.taken[indices]
        n = len(outcomes)
        best_bitmap = None
        best_count = -1
        for k in range(1, max_k + 1):
            bitmap = np.empty(n, dtype=bool)
            bitmap[:k] = outcomes[:k]
            if n > k:
                bitmap[k:] = outcomes[k:] == outcomes[:-k]
            count = int(bitmap.sum())
            if count > best_count:
                best_count = count
                best_bitmap = bitmap
        correct[indices] = best_bitmap
    return correct


class _BlockEntry:
    """Per-branch block-pattern state (one perfect-BTB entry)."""

    __slots__ = ("current_direction", "run_length", "previous_run")

    def __init__(self, first_outcome: bool) -> None:
        self.current_direction = first_outcome
        self.run_length = 1
        # previous_run[d]: length of the last completed run of direction d.
        # Unknown runs saturate so the predictor keeps predicting the
        # current direction until it learns the block lengths.
        self.previous_run = {True: MAX_RUN_LENGTH, False: MAX_RUN_LENGTH}

    def predict(self) -> bool:
        if self.run_length < self.previous_run[self.current_direction]:
            return self.current_direction
        return not self.current_direction

    def update(self, taken: bool) -> None:
        if taken == self.current_direction:
            if self.run_length < MAX_RUN_LENGTH:
                self.run_length += 1
        else:
            self.previous_run[self.current_direction] = self.run_length
            self.current_direction = taken
            self.run_length = 1


class BlockPatternPredictor(BranchPredictor):
    """Block-pattern predictor: n taken, m not-taken, repeating.

    After the n-th consecutive taken outcome the branch is predicted
    not-taken for the m observed on the previous not-taken block, and
    symmetrically (section 4.1.2).  Counts are capped below 256 and kept
    in a perfect BTB.
    """

    name = "block-pattern"

    def __init__(self) -> None:
        self._entries: Dict[int, _BlockEntry] = {}

    def predict(self, pc: int, target: int) -> bool:
        entry = self._entries.get(pc)
        if entry is None:
            return True
        return entry.predict()

    def update(self, pc: int, target: int, taken: bool) -> None:
        entry = self._entries.get(pc)
        if entry is None:
            self._entries[pc] = _BlockEntry(taken)
        else:
            entry.update(taken)

    def simulate(self, trace: Trace) -> np.ndarray:
        """Run-length fast path (see :mod:`repro.sim.kernels`)."""
        from repro.sim.kernels import simulate_block_pattern

        return simulate_block_pattern(self, trace)

    def btb_size(self) -> int:
        """Number of perfect-BTB entries allocated so far."""
        return len(self._entries)
