"""Interference-free two-level predictors.

An interference-free predictor has one PHT per static branch; it is
"prohibitively large" in hardware but isolates the predictive power of the
history mechanism from the destructive aliasing effects studied by Talcott
et al. and Young et al.  The paper uses interference-free gshare and PAs
throughout sections 3-5 as analysis instruments; we implement them with
unbounded dict-of-dict storage, which is exactly the idealised structure.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.predictors.base import BranchPredictor
from repro.trace.trace import Trace


class InterferenceFreeGshare(BranchPredictor):
    """Global-history two-level predictor with a private PHT per branch.

    Because every static branch owns its PHT, XORing the address into the
    index is pointless; the raw global history pattern selects the counter
    within the branch's own table.  This matches the paper's
    "interference-free gshare ... using the outcomes of all of the 16 most
    recent branches".

    Args:
        history_bits: Global history register length (16 in the paper).
        counter_bits: Counter width (2 in the paper).
    """

    name = "if-gshare"

    def __init__(self, history_bits: int = 16, counter_bits: int = 2) -> None:
        if history_bits < 0:
            raise ValueError(f"history_bits must be >= 0, got {history_bits}")
        self._history_bits = history_bits
        self._history_mask = (1 << history_bits) - 1
        self._counter_max = (1 << counter_bits) - 1
        self._threshold = 1 << (counter_bits - 1)
        self._initial = self._threshold
        self._history = 0
        # pc -> {history pattern -> counter value}
        self._phts: Dict[int, Dict[int, int]] = {}
        self.name = f"if-gshare-{history_bits}h"

    @property
    def history_bits(self) -> int:
        return self._history_bits

    def _pht_for(self, pc: int) -> Dict[int, int]:
        pht = self._phts.get(pc)
        if pht is None:
            pht = {}
            self._phts[pc] = pht
        return pht

    def predict(self, pc: int, target: int) -> bool:
        counter = self._phts.get(pc, {}).get(self._history, self._initial)
        return counter >= self._threshold

    def update(self, pc: int, target: int, taken: bool) -> None:
        pht = self._pht_for(pc)
        value = pht.get(self._history, self._initial)
        if taken:
            if value < self._counter_max:
                pht[self._history] = value + 1
            else:
                pht[self._history] = value
        else:
            pht[self._history] = value - 1 if value > 0 else value
        self._history = ((self._history << 1) | int(taken)) & self._history_mask

    def simulate(self, trace: Trace) -> np.ndarray:
        n = len(trace)
        correct = np.zeros(n, dtype=bool)
        history = self._history
        history_mask = self._history_mask
        counter_max = self._counter_max
        threshold = self._threshold
        initial = self._initial
        phts = self._phts
        pcs = trace.pc.tolist()
        takens = trace.taken.tolist()
        for i in range(n):
            pc = pcs[i]
            taken = takens[i]
            pht = phts.get(pc)
            if pht is None:
                pht = {}
                phts[pc] = pht
            value = pht.get(history, initial)
            correct[i] = (value >= threshold) == taken
            if taken:
                if value < counter_max:
                    pht[history] = value + 1
            elif value > 0:
                pht[history] = value - 1
            elif history not in pht:
                pht[history] = value
            history = ((history << 1) | taken) & history_mask
        self._history = history
        return correct


class InterferenceFreePAs(BranchPredictor):
    """Per-address two-level predictor with unbounded ("very large") BTB.

    Every static branch has its own history register and its own PHT, so
    neither first- nor second-level interference occurs.  This is the
    classifier predictor for the non-repeating-pattern class
    (section 4.1.3).

    Args:
        history_bits: Per-branch history register length.
        counter_bits: Counter width.
    """

    name = "if-pas"

    def __init__(self, history_bits: int = 12, counter_bits: int = 2) -> None:
        if history_bits < 0:
            raise ValueError(f"history_bits must be >= 0, got {history_bits}")
        self._history_bits = history_bits
        self._history_mask = (1 << history_bits) - 1
        self._counter_max = (1 << counter_bits) - 1
        self._threshold = 1 << (counter_bits - 1)
        self._initial = self._threshold
        # pc -> history register; pc -> {pattern -> counter}
        self._histories: Dict[int, int] = {}
        self._phts: Dict[int, Dict[int, int]] = {}
        self.name = f"if-pas-{history_bits}h"

    @property
    def history_bits(self) -> int:
        return self._history_bits

    def predict(self, pc: int, target: int) -> bool:
        history = self._histories.get(pc, 0)
        counter = self._phts.get(pc, {}).get(history, self._initial)
        return counter >= self._threshold

    def update(self, pc: int, target: int, taken: bool) -> None:
        history = self._histories.get(pc, 0)
        pht = self._phts.get(pc)
        if pht is None:
            pht = {}
            self._phts[pc] = pht
        value = pht.get(history, self._initial)
        if taken:
            if value < self._counter_max:
                pht[history] = value + 1
            else:
                pht[history] = value
        else:
            pht[history] = value - 1 if value > 0 else value
        self._histories[pc] = ((history << 1) | int(taken)) & self._history_mask

    def simulate(self, trace: Trace) -> np.ndarray:
        """Vectorised fast path (see :mod:`repro.sim.kernels`)."""
        from repro.sim.kernels import simulate_if_pas

        return simulate_if_pas(self, trace)
