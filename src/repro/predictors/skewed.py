"""Seznec's enhanced skewed branch predictor (e-gskew).

The paper cites Seznec's "Trading conflict and capacity aliasing in
conditional branch predictors" (its reference [7]) among the
interference-mitigation line of work.  The predictor reads three counter
banks indexed by three *different* hash functions of (address, history)
and takes a majority vote: two branches that collide in one bank almost
never collide in the others, so conflict aliasing is voted away without
the (unimplementable) one-PHT-per-branch structure.

This implementation uses the classic skewing construction from the
paper: per-bank indices built from XORs of rotated address/history
words.  One bank (bank 0) is bimodal-leaning (address-only index), as in
e-gskew, which protects bias-dominated branches from history noise.
"""

from __future__ import annotations

import numpy as np

from repro.predictors.base import BranchPredictor
from repro.trace.trace import Trace


def _rotate(value: int, amount: int, width: int) -> int:
    mask = (1 << width) - 1
    amount %= width
    value &= mask
    return ((value << amount) | (value >> (width - amount))) & mask


class SkewedPredictor(BranchPredictor):
    """e-gskew: three skewed banks with majority vote.

    Args:
        history_bits: Global history register length.
        bank_bits: log2 of each bank's counter count.
        counter_bits: Counter width.
    """

    name = "egskew"

    def __init__(
        self,
        history_bits: int = 10,
        bank_bits: int = 10,
        counter_bits: int = 2,
    ) -> None:
        if history_bits < 0:
            raise ValueError(f"history_bits must be >= 0, got {history_bits}")
        if bank_bits < 2:
            raise ValueError(f"bank_bits must be >= 2, got {bank_bits}")
        self._history_bits = history_bits
        self._history_mask = (1 << history_bits) - 1
        self._bank_bits = bank_bits
        self._bank_mask = (1 << bank_bits) - 1
        self._counter_max = (1 << counter_bits) - 1
        self._threshold = 1 << (counter_bits - 1)
        initial = self._threshold
        self._banks = [
            np.full(1 << bank_bits, initial, dtype=np.int8) for _ in range(3)
        ]
        self._history = 0
        self.name = f"egskew-{history_bits}h-{bank_bits}b"

    def _indices(self, pc: int):
        address = (pc >> 2) & self._bank_mask
        history = self._history & self._bank_mask
        width = self._bank_bits
        # Bank 0: bimodal-leaning (address only); banks 1 and 2 mix the
        # history under different rotations so collisions decorrelate.
        index0 = address
        index1 = (address ^ history) & self._bank_mask
        index2 = (_rotate(address, width // 2, width) ^ _rotate(history, 1, width)) & self._bank_mask
        return index0, index1, index2

    def predict(self, pc: int, target: int) -> bool:
        votes = 0
        for bank, index in zip(self._banks, self._indices(pc)):
            votes += bank[index] >= self._threshold
        return votes >= 2

    def update(self, pc: int, target: int, taken: bool) -> None:
        # e-gskew's partial update: on a correct prediction only the
        # banks that agreed train; on a misprediction all banks train.
        indices = self._indices(pc)
        values = [
            bank[index] for bank, index in zip(self._banks, indices)
        ]
        prediction = sum(v >= self._threshold for v in values) >= 2
        for bank, index, value in zip(self._banks, indices, values):
            agreed = (value >= self._threshold) == taken
            if prediction != taken or agreed:
                if taken:
                    if value < self._counter_max:
                        bank[index] = value + 1
                elif value > 0:
                    bank[index] = value - 1
        self._history = ((self._history << 1) | int(taken)) & self._history_mask

    def simulate(self, trace: Trace) -> np.ndarray:
        """Tight-loop fast path mirroring predict/update exactly."""
        n = len(trace)
        correct = np.zeros(n, dtype=bool)
        banks = [bank.tolist() for bank in self._banks]
        bank0, bank1, bank2 = banks
        history = self._history
        history_mask = self._history_mask
        bank_mask = self._bank_mask
        width = self._bank_bits
        half = width // 2
        counter_max = self._counter_max
        threshold = self._threshold
        pcs = (trace.pc >> 2).tolist()
        takens = trace.taken.tolist()
        for i in range(n):
            address = pcs[i] & bank_mask
            taken = takens[i]
            hist = history & bank_mask
            index0 = address
            index1 = (address ^ hist) & bank_mask
            rotated_address = ((address << half) | (address >> (width - half))) & bank_mask
            rotated_history = ((hist << 1) | (hist >> (width - 1))) & bank_mask
            index2 = (rotated_address ^ rotated_history) & bank_mask
            v0, v1, v2 = bank0[index0], bank1[index1], bank2[index2]
            votes = (v0 >= threshold) + (v1 >= threshold) + (v2 >= threshold)
            prediction = votes >= 2
            correct[i] = prediction == taken
            mispredicted = prediction != taken
            for bank, index, value in (
                (bank0, index0, v0),
                (bank1, index1, v1),
                (bank2, index2, v2),
            ):
                if mispredicted or (value >= threshold) == taken:
                    if taken:
                        if value < counter_max:
                            bank[index] = value + 1
                    elif value > 0:
                        bank[index] = value - 1
            history = ((history << 1) | taken) & history_mask
        self._banks = [np.asarray(bank, dtype=np.int8) for bank in banks]
        self._history = history
        return correct
