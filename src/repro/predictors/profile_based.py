"""Profile-based predictors from the paper's related work (section 2.2).

* Sechrest et al. found that, for per-address predictors with short
  histories, *statically determined* PHT contents perform on par with
  adaptive 2-bit counters; Young et al. report the same for global
  predictors when profiling and testing on the same input.
  :class:`StaticPhtPAs` and :class:`StaticPhtGlobal` implement those
  schemes: the second level is filled by profiling (per-pattern majority)
  and never adapts.
* Chang et al. proposed branch classification: strongly biased branches
  (by profiled taken rate) use a static prediction, the rest a dynamic
  predictor.  :class:`BranchClassificationHybrid` implements it around
  any dynamic component.

All three are *profile-driven*: ``fit`` consumes a profiling trace;
evaluation may reuse the same trace (the papers' same-input setup) or a
different input (a different workload ``run_seed``).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.predictors.base import BranchPredictor
from repro.trace.trace import Trace


class StaticPhtGlobal(BranchPredictor):
    """Global two-level predictor with a profiled, non-adaptive PHT.

    During :meth:`fit`, outcomes are counted per (branch, global-history
    pattern); prediction uses the majority direction of the profiled
    bucket.  Buckets never seen during profiling fall back to the
    branch's profiled overall majority, then to taken.

    Args:
        history_bits: Global history register length.
    """

    name = "static-pht-global"

    def __init__(self, history_bits: int = 8) -> None:
        if history_bits < 0:
            raise ValueError(f"history_bits must be >= 0, got {history_bits}")
        self._history_bits = history_bits
        self._history_mask = (1 << history_bits) - 1
        self._history = 0
        self._directions: Optional[Dict[Tuple[int, int], bool]] = None
        self._bias: Dict[int, bool] = {}
        self.name = f"static-pht-global-{history_bits}h"

    def fit(self, profile: Trace) -> "StaticPhtGlobal":
        """Fill the PHT from a profiling run; returns self."""
        counts: Dict[Tuple[int, int], int] = {}
        totals: Dict[Tuple[int, int], int] = {}
        bias_counts: Dict[int, int] = {}
        bias_totals: Dict[int, int] = {}
        history = 0
        history_mask = self._history_mask
        pcs = profile.pc.tolist()
        takens = profile.taken.tolist()
        for i in range(len(profile)):
            pc = pcs[i]
            taken = takens[i]
            key = (pc, history)
            counts[key] = counts.get(key, 0) + taken
            totals[key] = totals.get(key, 0) + 1
            bias_counts[pc] = bias_counts.get(pc, 0) + taken
            bias_totals[pc] = bias_totals.get(pc, 0) + 1
            history = ((history << 1) | taken) & history_mask
        self._directions = {
            key: counts[key] * 2 >= totals[key] for key in counts
        }
        self._bias = {
            pc: bias_counts[pc] * 2 >= bias_totals[pc] for pc in bias_counts
        }
        return self

    def predict(self, pc: int, target: int) -> bool:
        if self._directions is None:
            raise RuntimeError("StaticPhtGlobal requires fit() first")
        direction = self._directions.get((pc, self._history))
        if direction is None:
            direction = self._bias.get(pc, True)
        return direction

    def update(self, pc: int, target: int, taken: bool) -> None:
        # The PHT is static; only the history register moves.
        self._history = ((self._history << 1) | int(taken)) & self._history_mask


class StaticPhtPAs(BranchPredictor):
    """Per-address two-level predictor with a profiled, non-adaptive PHT.

    The Sechrest et al. configuration: per-branch history registers with
    statically determined second-level contents.

    Args:
        history_bits: Per-branch history register length.
    """

    name = "static-pht-pas"

    def __init__(self, history_bits: int = 6) -> None:
        if history_bits < 0:
            raise ValueError(f"history_bits must be >= 0, got {history_bits}")
        self._history_bits = history_bits
        self._history_mask = (1 << history_bits) - 1
        self._histories: Dict[int, int] = {}
        self._directions: Optional[Dict[Tuple[int, int], bool]] = None
        self._bias: Dict[int, bool] = {}
        self.name = f"static-pht-pas-{history_bits}h"

    def fit(self, profile: Trace) -> "StaticPhtPAs":
        """Fill the PHT from a profiling run; returns self."""
        counts: Dict[Tuple[int, int], int] = {}
        totals: Dict[Tuple[int, int], int] = {}
        bias_counts: Dict[int, int] = {}
        bias_totals: Dict[int, int] = {}
        histories: Dict[int, int] = {}
        history_mask = self._history_mask
        pcs = profile.pc.tolist()
        takens = profile.taken.tolist()
        for i in range(len(profile)):
            pc = pcs[i]
            taken = takens[i]
            history = histories.get(pc, 0)
            key = (pc, history)
            counts[key] = counts.get(key, 0) + taken
            totals[key] = totals.get(key, 0) + 1
            bias_counts[pc] = bias_counts.get(pc, 0) + taken
            bias_totals[pc] = bias_totals.get(pc, 0) + 1
            histories[pc] = ((history << 1) | taken) & history_mask
        self._directions = {
            key: counts[key] * 2 >= totals[key] for key in counts
        }
        self._bias = {
            pc: bias_counts[pc] * 2 >= bias_totals[pc] for pc in bias_counts
        }
        return self

    def predict(self, pc: int, target: int) -> bool:
        if self._directions is None:
            raise RuntimeError("StaticPhtPAs requires fit() first")
        history = self._histories.get(pc, 0)
        direction = self._directions.get((pc, history))
        if direction is None:
            direction = self._bias.get(pc, True)
        return direction

    def update(self, pc: int, target: int, taken: bool) -> None:
        history = self._histories.get(pc, 0)
        self._histories[pc] = ((history << 1) | int(taken)) & self._history_mask


class BranchClassificationHybrid(BranchPredictor):
    """Chang et al.'s branch-classification predictor.

    A profiling run classifies each branch by taken rate: branches more
    biased than ``bias_threshold`` are predicted statically in their
    profiled direction; the rest go to the dynamic component.  Branches
    never profiled also go to the dynamic component.

    Args:
        dynamic_component: Predictor used for weakly biased branches.
        bias_threshold: Profiled-bias cutoff for static prediction.
    """

    name = "chang"

    def __init__(
        self,
        dynamic_component: BranchPredictor,
        bias_threshold: float = 0.95,
    ) -> None:
        if not 0.5 <= bias_threshold <= 1.0:
            raise ValueError(
                f"bias_threshold must be in [0.5, 1], got {bias_threshold}"
            )
        self._dynamic = dynamic_component
        self._threshold = bias_threshold
        self._static_direction: Optional[Dict[int, bool]] = None
        self.name = f"chang({dynamic_component.name},{bias_threshold})"

    def fit(self, profile: Trace) -> "BranchClassificationHybrid":
        """Classify branches from a profiling run; returns self."""
        directions: Dict[int, bool] = {}
        for pc, outcomes in profile.outcomes_by_pc().items():
            rate = float(outcomes.mean())
            if max(rate, 1.0 - rate) >= self._threshold:
                directions[pc] = rate >= 0.5
        self._static_direction = directions
        return self

    def is_static(self, pc: int) -> bool:
        """Whether ``pc`` was classified strongly biased."""
        if self._static_direction is None:
            raise RuntimeError("BranchClassificationHybrid requires fit() first")
        return pc in self._static_direction

    def predict(self, pc: int, target: int) -> bool:
        if self._static_direction is None:
            raise RuntimeError("BranchClassificationHybrid requires fit() first")
        direction = self._static_direction.get(pc)
        if direction is not None:
            return direction
        return self._dynamic.predict(pc, target)

    def update(self, pc: int, target: int, taken: bool) -> None:
        # The dynamic component trains on every branch (keeping its
        # history global), but statically classified branches never
        # consult it.
        self._dynamic.update(pc, target, taken)
