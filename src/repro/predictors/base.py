"""Predictor interface and the trace-driven simulation loop.

Predictors follow the paper's trace-driven regime: for each dynamic branch
the predictor is asked for a direction, then immediately trained with the
resolved outcome (no speculative-update modelling; the paper's simulator is
likewise a pure trace-driven direction-prediction study).
"""

from __future__ import annotations

import abc

import numpy as np

from repro.trace.trace import Trace


class BranchPredictor(abc.ABC):
    """Abstract trace-driven branch direction predictor."""

    #: Human-readable predictor name used in experiment reports.
    name: str = "predictor"

    #: Whether chained ``simulate()`` calls over consecutive trace
    #: windows reproduce the whole-trace bitmap (the streaming-fold
    #: property PC011 enforces).  True for every causal predictor --
    #: the generic loop and the vectorised kernels carry their state
    #: across calls.  Predictors whose ``simulate()`` is an oracle
    #: replay bound to one fitted whole trace set this False to opt
    #: out of window folding.
    windowable: bool = True

    @abc.abstractmethod
    def predict(self, pc: int, target: int) -> bool:
        """Predict the direction of the branch at ``pc``.

        Args:
            pc: Branch address.
            target: Taken-target address (used only by predictors that
                care about branch direction in the static sense, e.g.
                BTFNT; dynamic predictors ignore it).

        Returns:
            True for taken.
        """

    @abc.abstractmethod
    def update(self, pc: int, target: int, taken: bool) -> None:
        """Train the predictor with the resolved outcome."""

    def simulate(self, trace: Trace) -> np.ndarray:
        """Run predict/update over ``trace``; return a correctness bitmap.

        Subclasses with a whole-trace fast path (vectorised or
        run-length-based) override this; the default is the generic
        per-branch loop.
        """
        return simulate(self, trace)

    def accuracy(self, trace: Trace) -> float:
        """Convenience: fraction of correct predictions over ``trace``."""
        if not len(trace):
            return 0.0
        return float(self.simulate(trace).mean())

    def __repr__(self) -> str:
        return f"<{type(self).__name__} name={self.name!r}>"


def simulate(predictor: BranchPredictor, trace: Trace) -> np.ndarray:
    """Drive ``predictor`` over ``trace``, predict-then-update per branch.

    Returns:
        Boolean array, one entry per dynamic branch, True where the
        prediction matched the outcome.  Per-branch bitmaps (rather than a
        single accuracy number) are the substrate for every classification
        experiment in sections 4 and 5.
    """
    n = len(trace)
    correct = np.zeros(n, dtype=bool)
    pc_col = trace.pc
    target_col = trace.target
    taken_col = trace.taken
    predict = predictor.predict
    update = predictor.update
    for i in range(n):
        pc = int(pc_col[i])
        target = int(target_col[i])
        taken = bool(taken_col[i])
        correct[i] = predict(pc, target) == taken
        update(pc, target, taken)
    return correct
