"""Global vs per-address vs static distributions (section 5.1).

Figure 7 asks, per branch: is gshare, PAs, or the ideal static predictor
most accurate?  Figure 8 asks the same with the *classes* of
predictability: the global side may use interference-free gshare or the
3-branch selective history, the per-address side any of the section-4.1
class predictors.  Both are instances of one computation: a best-of
distribution over groups of correctness bitmaps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Set

import numpy as np

from repro.analysis.accuracy import dynamic_weighted_fraction
from repro.trace.stats import per_branch_bias
from repro.trace.trace import Trace

#: Label used for the ideal-static reference group.
STATIC_LABEL = "ideal_static"


@dataclass(frozen=True)
class BestPredictorDistribution:
    """Which predictor family is best, per branch and in aggregate.

    Attributes:
        best_of: Map from static branch address to the winning label.
        dynamic_fractions: Dynamic-weighted fraction per label (the bars
            of figures 7 and 8).
        static_best_biased_fraction: Among static-best branches, the
            dynamic-weighted fraction more than 99% biased (83% in
            figure 7, 92% in figure 8).
    """

    best_of: Dict[int, str]
    dynamic_fractions: Dict[str, float]
    static_best_biased_fraction: float

    def members(self, label: str) -> Set[int]:
        """Static branch addresses won by ``label``."""
        return {pc for pc, winner in self.best_of.items() if winner == label}


def best_predictor_distribution(
    trace: Trace,
    groups: Dict[str, Sequence[np.ndarray]],
    static_correct: np.ndarray,
) -> BestPredictorDistribution:
    """Assign every branch to the group whose best member predicts it best.

    Tie rules follow the paper: the ideal static predictor wins whenever
    it is *at least* as accurate as every group ("predicted at least as
    accurately with an ideal static predictor"); among groups, earlier
    insertion order wins ties.

    Args:
        trace: The simulated trace.
        groups: Label -> correctness bitmaps of that family's predictors
            (a branch scores a group by the group's best bitmap on it).
        static_correct: Ideal-static correctness bitmap.
    """
    for label, bitmaps in groups.items():
        if not bitmaps:
            raise ValueError(f"group {label!r} has no bitmaps")
        for bitmap in bitmaps:
            if len(bitmap) != len(trace):
                raise ValueError(f"group {label!r} bitmap misaligned with trace")
    if len(static_correct) != len(trace):
        raise ValueError("static bitmap misaligned with trace")

    best_of: Dict[int, str] = {}
    for pc, indices in trace.indices_by_pc().items():
        static_count = int(static_correct[indices].sum())
        best_label = STATIC_LABEL
        best_count = static_count
        for label, bitmaps in groups.items():
            group_count = max(int(bitmap[indices].sum()) for bitmap in bitmaps)
            # Strictly-greater: static keeps ties, earlier groups keep
            # ties against later ones.
            if group_count > best_count:
                best_count = group_count
                best_label = label
        best_of[pc] = best_label

    labels = [STATIC_LABEL] + list(groups)
    fractions = {
        label: dynamic_weighted_fraction(
            trace, [pc for pc, winner in best_of.items() if winner == label]
        )
        for label in labels
    }

    biases = per_branch_bias(trace)
    counts = trace.dynamic_counts()
    static_members = [pc for pc, w in best_of.items() if w == STATIC_LABEL]
    static_dynamic = sum(counts[pc] for pc in static_members)
    if static_dynamic:
        biased_dynamic = sum(
            counts[pc] for pc in static_members if biases[pc] > 0.99
        )
        biased_fraction = biased_dynamic / static_dynamic
    else:
        biased_fraction = 0.0

    return BestPredictorDistribution(
        best_of=best_of,
        dynamic_fractions=fractions,
        static_best_biased_fraction=biased_fraction,
    )
