"""Per-address predictability classes (section 4.1, figure 6).

Each static branch is scored by the class predictors -- the loop
predictor (4.1.1), the repeating-pattern predictors (best fixed-length-k
and the block predictor, 4.1.2), and interference-free PAs for
non-repeating patterns (4.1.3) -- and assigned to the class whose
predictor is most accurate on it.  Branches that the ideal static
predictor handles at least as well belong to no class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Set

from repro.analysis.accuracy import (
    correct_counts_by_branch,
    dynamic_weighted_fraction,
)
from repro.analysis.runner import Lab
from repro.trace.stats import per_branch_bias

#: Class labels in the paper's figure-6 legend order.
PER_ADDRESS_CLASSES = ("ideal_static", "loop", "repeating", "non_repeating")


@dataclass(frozen=True)
class PerAddressClassification:
    """Result of the section-4 classification.

    Attributes:
        class_of: Map from static branch address to its class label (one
            of :data:`PER_ADDRESS_CLASSES`).
        dynamic_fractions: Dynamic-execution-weighted fraction of each
            class (the bars of figure 6).
        static_best_biased_fraction: Among ideal-static-best branches,
            the dynamic-weighted fraction that is more than 99% biased
            (the paper reports 88% for figure 6).
    """

    class_of: Dict[int, str]
    dynamic_fractions: Dict[str, float]
    static_best_biased_fraction: float

    def members(self, label: str) -> Set[int]:
        """Static branch addresses belonging to ``label``."""
        if label not in PER_ADDRESS_CLASSES:
            raise KeyError(
                f"unknown class {label!r}; choose from {PER_ADDRESS_CLASSES}"
            )
        return {pc for pc, cls in self.class_of.items() if cls == label}


def classify_per_address(lab: Lab) -> PerAddressClassification:
    """Run the section-4 classification over a lab's trace.

    Ties follow the paper's rule: the ideal static predictor wins ties
    against every class ("at least equally well predicted"); among the
    classes, ties go to the simpler premise (loop, then repeating, then
    non-repeating).
    """
    trace = lab.trace
    loop_counts = correct_counts_by_branch(trace, lab.correct("loop"))
    fixed_counts = correct_counts_by_branch(trace, lab.correct("fixed_best"))
    block_counts = correct_counts_by_branch(trace, lab.correct("block"))
    pas_counts = correct_counts_by_branch(trace, lab.correct("if_pas"))
    static_counts = correct_counts_by_branch(trace, lab.correct("ideal_static"))

    class_of: Dict[int, str] = {}
    for pc in static_counts:
        repeating = max(fixed_counts[pc], block_counts[pc])
        candidates = (
            ("loop", loop_counts[pc]),
            ("repeating", repeating),
            ("non_repeating", pas_counts[pc]),
        )
        best_label, best_count = max(candidates, key=lambda item: item[1])
        # First candidate in declaration order wins ties via max() --
        # loop before repeating before non-repeating, as documented.
        if static_counts[pc] >= best_count:
            class_of[pc] = "ideal_static"
        else:
            class_of[pc] = best_label

    fractions = {
        label: dynamic_weighted_fraction(
            trace, [pc for pc, cls in class_of.items() if cls == label]
        )
        for label in PER_ADDRESS_CLASSES
    }

    biases = per_branch_bias(trace)
    counts = trace.dynamic_counts()
    static_members = [pc for pc, cls in class_of.items() if cls == "ideal_static"]
    static_dynamic = sum(counts[pc] for pc in static_members)
    if static_dynamic:
        biased_dynamic = sum(
            counts[pc] for pc in static_members if biases[pc] > 0.99
        )
        biased_fraction = biased_dynamic / static_dynamic
    else:
        biased_fraction = 0.0

    return PerAddressClassification(
        class_of=class_of,
        dynamic_fractions=fractions,
        static_best_biased_fraction=biased_fraction,
    )
