"""Branch classification (sections 4 and 5 of the paper).

* :mod:`~repro.classify.per_address` -- assign every static branch to a
  per-address predictability class (loop / repeating pattern /
  non-repeating pattern / ideal-static-best), figure 6.
* :mod:`~repro.classify.global_local` -- distributions of branches best
  predicted globally, per-address, or statically (figures 7 and 8).
"""

from repro.classify.per_address import (
    PER_ADDRESS_CLASSES,
    PerAddressClassification,
    classify_per_address,
)
from repro.classify.global_local import (
    BestPredictorDistribution,
    best_predictor_distribution,
)

__all__ = [
    "BestPredictorDistribution",
    "PER_ADDRESS_CLASSES",
    "PerAddressClassification",
    "best_predictor_distribution",
    "classify_per_address",
]
