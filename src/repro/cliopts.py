"""Shared engine options for every ``repro`` / ``repro-tools`` command.

The simulation engine grew one flag at a time (``--jobs`` on the report
runner, ``--seed`` here, ``--cache-dir`` there), so the same knob was
spelled or defaulted differently across subcommands.  This module is
the one definition: :func:`engine_parent` returns an ``add_help=False``
parser carrying every engine-level flag, and each subcommand parser
lists it in ``parents=[...]`` --

* ``--jobs`` -- worker processes (``REPRO_JOBS`` / CPU count default);
* ``--cache-dir`` / ``--no-cache`` -- the on-disk result cache;
* ``--seed`` -- the workload execution seed ("input data set");
* ``--metrics-out`` / ``--trace-out`` -- observability artefacts
  (metric snapshot JSON, Chrome-trace span JSON);
* ``--retries`` / ``--task-timeout`` -- the resilience layer's retry
  budget and per-task wall-clock limit (``REPRO_MAX_RETRIES`` /
  ``REPRO_TASK_TIMEOUT``);
* ``--inject-fault`` -- deterministic fault injection
  (``REPRO_FAULT_SPEC``; see ``docs/resilience.md``);
* ``--chunk-branches`` -- streamed simulation window
  (``REPRO_CHUNK_BRANCHES``; see ``docs/performance.md``).

Commands that have no use for a given flag still *accept* it (uniform
interface); they simply ignore it.
"""

from __future__ import annotations

import argparse
import json

#: The seed every command uses unless told otherwise.
DEFAULT_SEED = 12345


def package_version() -> str:
    """The installed package version, from metadata when available.

    An editable/installed package answers from ``importlib.metadata``;
    a bare ``PYTHONPATH=src`` checkout falls back to
    ``repro.__version__``.
    """
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:
        import repro

        return getattr(repro, "__version__", "unknown")


def version_string(prog: str) -> str:
    """What ``<prog> --version`` prints."""
    return f"{prog} {package_version()}"


def engine_parent() -> argparse.ArgumentParser:
    """The shared parent parser with every engine-level option."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("engine options")
    group.add_argument(
        "--jobs",
        type=int,
        default=None,
        help=(
            "simulation worker processes (default: REPRO_JOBS or the "
            "CPU count; 1 disables multiprocessing)"
        ),
    )
    group.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="result-cache directory (default: REPRO_CACHE_DIR or .repro-cache)",
    )
    group.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the on-disk result cache entirely",
    )
    group.add_argument(
        "--seed",
        type=int,
        default=DEFAULT_SEED,
        help="workload execution seed (the 'input data set')",
    )
    group.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write the run's metric snapshot as JSON to PATH",
    )
    group.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="write the run's spans as Chrome trace JSON to PATH",
    )
    group.add_argument(
        "--retries",
        type=int,
        default=None,
        help=(
            "retries per simulation task after its first attempt "
            "(default: REPRO_MAX_RETRIES or 2; 0 disables retries)"
        ),
    )
    group.add_argument(
        "--task-timeout",
        type=float,
        metavar="SECONDS",
        default=None,
        help=(
            "wall-clock limit per simulation task; an expired parallel "
            "worker is killed and the task retried (default: "
            "REPRO_TASK_TIMEOUT or no limit)"
        ),
    )
    group.add_argument(
        "--inject-fault",
        metavar="SPEC",
        action="append",
        default=None,
        help=(
            "inject a deterministic fault: 'selector:attempt:kind' with "
            "kind one of crash|hang|corrupt (repeatable; default: "
            "REPRO_FAULT_SPEC; see docs/resilience.md)"
        ),
    )
    group.add_argument(
        "--chunk-branches",
        type=int,
        metavar="N",
        default=None,
        help=(
            "stream simulations over N-branch trace windows instead of "
            "whole traces (bounded memory, bit-identical results; "
            "rounded up to a multiple of 8; default: "
            "REPRO_CHUNK_BRANCHES or whole-trace)"
        ),
    )
    return parent


def fault_spec_from_args(args: argparse.Namespace):
    """Join repeated ``--inject-fault`` values into one spec string.

    Returns None when the flag was never given, so the API layer falls
    back to ``REPRO_FAULT_SPEC``.
    """
    entries = getattr(args, "inject_fault", None)
    if not entries:
        return None
    return ",".join(entries)


def write_observability_outputs(args: argparse.Namespace) -> None:
    """Honour ``--metrics-out`` / ``--trace-out`` after a command ran.

    Writes the *process-global* metric snapshot and span buffer, which
    for a CLI invocation is exactly the command's telemetry.
    """
    metrics_out = getattr(args, "metrics_out", None)
    if metrics_out:
        from repro.obs.metrics import METRICS

        with open(metrics_out, "w") as fh:
            json.dump(METRICS.snapshot(), fh, indent=2, sort_keys=True)
            fh.write("\n")
    trace_out = getattr(args, "trace_out", None)
    if trace_out:
        from repro.obs.tracing import TRACER

        TRACER.write(trace_out)
