"""Analysis layer: the simulation lab and accuracy accounting.

* :mod:`~repro.analysis.config` -- the scaled predictor configuration
  shared by every experiment (and the scaling rationale).
* :mod:`~repro.analysis.runner` -- :class:`~repro.analysis.runner.Lab`,
  which runs each predictor once per trace and memoises the per-branch
  correctness bitmaps everything downstream consumes.
* :mod:`~repro.analysis.accuracy` -- grouping bitmaps by static branch.
* :mod:`~repro.analysis.percentile` -- the dynamic-weighted percentile
  curves of figure 9.
* :mod:`~repro.analysis.interference` -- gshare PHT-interference
  accounting (the Talcott/Young effect of section 2.2).
* :mod:`~repro.analysis.cost` -- the analytical pipeline model turning
  accuracy into CPI (the paper's motivation).
"""

from repro.analysis.accuracy import (
    accuracy_by_branch,
    dynamic_weighted_fraction,
    misprediction_reduction,
)
from repro.analysis.config import LabConfig
from repro.analysis.cost import PipelineModel
from repro.analysis.interference import (
    InterferenceReport,
    measure_gshare_interference,
)
from repro.analysis.offenders import (
    BranchOffender,
    render_offenders,
    top_offenders,
)
from repro.analysis.percentile import percentile_difference_curve
from repro.analysis.runner import Lab
from repro.analysis.warmup import WarmupCurve, warmup_curve

__all__ = [
    "BranchOffender",
    "InterferenceReport",
    "Lab",
    "LabConfig",
    "PipelineModel",
    "accuracy_by_branch",
    "dynamic_weighted_fraction",
    "measure_gshare_interference",
    "misprediction_reduction",
    "percentile_difference_curve",
    "render_offenders",
    "top_offenders",
    "WarmupCurve",
    "warmup_curve",
]
