"""Analysis layer: the simulation lab and accuracy accounting.

* :mod:`~repro.analysis.config` -- the scaled predictor configuration
  shared by every experiment (and the scaling rationale).
* :mod:`~repro.analysis.runner` -- :class:`~repro.analysis.runner.Lab`,
  which runs each predictor once per trace and memoises the per-branch
  correctness bitmaps everything downstream consumes.
* :mod:`~repro.analysis.accuracy` -- grouping bitmaps by static branch.
* :mod:`~repro.analysis.percentile` -- the dynamic-weighted percentile
  curves of figure 9.
* :mod:`~repro.analysis.interference` -- gshare PHT-interference
  accounting (the Talcott/Young effect of section 2.2).
* :mod:`~repro.analysis.cost` -- the analytical pipeline model turning
  accuracy into CPI (the paper's motivation).
* :mod:`~repro.analysis.cache` -- the content-addressed on-disk result
  cache (bitmaps, correlation data, generated traces).
* :mod:`~repro.analysis.parallel` -- the multi-process scheduler that
  fans ``(benchmark, task)`` jobs over workers and folds results back
  into the labs.
"""

from repro.analysis.accuracy import (
    accuracy_by_branch,
    dynamic_weighted_fraction,
    misprediction_reduction,
)
from repro.analysis.cache import CacheStats, ResultCache, result_key
from repro.analysis.config import LabConfig
from repro.analysis.cost import PipelineModel
from repro.analysis.interference import (
    InterferenceReport,
    measure_gshare_interference,
)
from repro.analysis.offenders import (
    BranchOffender,
    render_offenders,
    top_offenders,
)
from repro.analysis.parallel import default_jobs, prime_labs
from repro.analysis.percentile import percentile_difference_curve
from repro.analysis.runner import Lab
from repro.analysis.warmup import WarmupCurve, warmup_curve

__all__ = [
    "BranchOffender",
    "CacheStats",
    "InterferenceReport",
    "Lab",
    "LabConfig",
    "PipelineModel",
    "ResultCache",
    "default_jobs",
    "prime_labs",
    "result_key",
    "accuracy_by_branch",
    "dynamic_weighted_fraction",
    "measure_gshare_interference",
    "misprediction_reduction",
    "percentile_difference_curve",
    "render_offenders",
    "top_offenders",
    "WarmupCurve",
    "warmup_curve",
]
