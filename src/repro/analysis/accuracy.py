"""Per-branch accuracy accounting.

Every predictor run yields a per-dynamic-branch correctness bitmap; the
paper's classification experiments (sections 4-5) compare predictors *per
static branch*, weighting by dynamic execution frequency.  These helpers
do that bookkeeping.
"""

from __future__ import annotations

from typing import Dict, Iterable

import numpy as np

from repro.trace.trace import Trace


def accuracy_by_branch(trace: Trace, correct: np.ndarray) -> Dict[int, float]:
    """Per-static-branch accuracy from a correctness bitmap.

    Args:
        trace: The simulated trace.
        correct: Bitmap aligned with ``trace`` (one bool per dynamic
            branch).

    Returns:
        Map from branch address to that branch's prediction accuracy.
    """
    if len(correct) != len(trace):
        raise ValueError(
            f"bitmap length {len(correct)} != trace length {len(trace)}"
        )
    return {
        pc: float(correct[indices].mean())
        for pc, indices in trace.indices_by_pc().items()
    }


def correct_counts_by_branch(trace: Trace, correct: np.ndarray) -> Dict[int, int]:
    """Per-static-branch count of correct predictions."""
    if len(correct) != len(trace):
        raise ValueError(
            f"bitmap length {len(correct)} != trace length {len(trace)}"
        )
    return {
        pc: int(correct[indices].sum())
        for pc, indices in trace.indices_by_pc().items()
    }


def dynamic_weighted_fraction(trace: Trace, branches: Iterable[int]) -> float:
    """Fraction of *dynamic* branches whose static branch is in ``branches``.

    This is the weighting the paper uses for every distribution figure
    ("weighted by the dynamic execution frequencies of the branches").
    """
    if not len(trace):
        return 0.0
    counts = trace.dynamic_counts()
    member = sum(counts.get(pc, 0) for pc in branches)
    return member / len(trace)


def misprediction_reduction(
    baseline_accuracy: float, improved_accuracy: float
) -> float:
    """Fraction of the baseline's mispredictions removed by the improvement.

    The paper reports combiner gains both as accuracy deltas and as
    misprediction fractions ("representing 13% of the mispredictions for
    gcc"); this converts between the two views.
    """
    mispredictions = 1.0 - baseline_accuracy
    if mispredictions <= 0.0:
        return 0.0
    return (improved_accuracy - baseline_accuracy) / mispredictions
