"""The simulation lab: one place that runs predictors and caches results.

Every experiment in the paper reuses the same underlying simulations
(gshare appears in figure 4, table 2, figure 7 and figure 9; the
correlation collection feeds figures 4, 5, 8 and table 2).  A
:class:`Lab` wraps one trace and memoises every predictor's per-branch
correctness bitmap plus the correlation data, so a full experiment run
simulates each predictor exactly once.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.analysis.config import DEFAULT_CONFIG, LabConfig
from repro.correlation.selection import Selection, select_for_trace
from repro.correlation.tagging import CorrelationData, collect_correlation_data
from repro.predictors.base import BranchPredictor
from repro.predictors.pattern import best_fixed_length_correct
from repro.predictors.selective import SelectiveHistoryPredictor
from repro.trace.stats import TraceStatistics, compute_statistics
from repro.trace.trace import Trace


class Lab:
    """Memoised predictor runs over a single trace.

    Args:
        trace: The branch trace under analysis.
        config: Predictor sizing (defaults to the paper-scaled
            :data:`~repro.analysis.config.DEFAULT_CONFIG`).
    """

    def __init__(self, trace: Trace, config: LabConfig = DEFAULT_CONFIG) -> None:
        self.trace = trace
        self.config = config
        self._correct: Dict[str, np.ndarray] = {}
        self._correlation_data: Optional[CorrelationData] = None
        self._selections: Dict[Tuple[int, int], Dict[int, Selection]] = {}
        self._stats: Optional[TraceStatistics] = None
        self._factories: Dict[str, Callable[[], BranchPredictor]] = {
            "gshare": config.gshare,
            "if_gshare": config.if_gshare,
            "pas": config.pas,
            "if_pas": config.if_pas,
            "loop": config.loop,
            "block": config.block_pattern,
            "ideal_static": config.ideal_static,
        }

    # -- basic results ------------------------------------------------------

    @property
    def stats(self) -> TraceStatistics:
        """Summary statistics of the trace (memoised)."""
        if self._stats is None:
            self._stats = compute_statistics(self.trace)
        return self._stats

    def available_predictors(self) -> Tuple[str, ...]:
        """Names accepted by :meth:`correct` / :meth:`accuracy`."""
        return tuple(self._factories) + ("fixed_best",)

    def correct(self, name: str) -> np.ndarray:
        """Correctness bitmap of a named predictor (simulated once)."""
        cached = self._correct.get(name)
        if cached is not None:
            return cached
        if name == "fixed_best":
            bitmap = best_fixed_length_correct(self.trace)
        else:
            try:
                factory = self._factories[name]
            except KeyError:
                raise KeyError(
                    f"unknown predictor {name!r}; choose from "
                    f"{self.available_predictors()}"
                ) from None
            bitmap = factory().simulate(self.trace)
        self._correct[name] = bitmap
        return bitmap

    def accuracy(self, name: str) -> float:
        """Overall accuracy of a named predictor."""
        if not len(self.trace):
            return 0.0
        return float(self.correct(name).mean())

    # -- correlation results ---------------------------------------------------

    def correlation_data(self) -> CorrelationData:
        """Tagged-correlation observations (collected once at window 32)."""
        if self._correlation_data is None:
            self._correlation_data = collect_correlation_data(
                self.trace, window=self.config.collection_window
            )
        return self._correlation_data

    def selections(self, count: int, window: int = None) -> Dict[int, Selection]:
        """Oracle selections for a selective history of ``count`` branches."""
        if window is None:
            window = self.config.selective_window
        key = (count, window)
        cached = self._selections.get(key)
        if cached is None:
            cached = select_for_trace(
                self.correlation_data(),
                count,
                self.config.selection_config(window),
            )
            self._selections[key] = cached
        return cached

    def selective_correct(self, count: int, window: int = None) -> np.ndarray:
        """Correctness bitmap of the selective-history predictor."""
        if window is None:
            window = self.config.selective_window
        name = f"selective_{count}_{window}"
        cached = self._correct.get(name)
        if cached is None:
            predictor = SelectiveHistoryPredictor(
                count, self.config.selection_config(window)
            )
            predictor.fit(
                self.trace,
                data=self.correlation_data(),
                selections=self.selections(count, window),
            )
            cached = predictor.simulate(self.trace)
            self._correct[name] = cached
        return cached

    def selective_accuracy(self, count: int, window: int = None) -> float:
        if not len(self.trace):
            return 0.0
        return float(self.selective_correct(count, window).mean())
