"""The simulation lab: one place that runs predictors and caches results.

Every experiment in the paper reuses the same underlying simulations
(gshare appears in figure 4, table 2, figure 7 and figure 9; the
correlation collection feeds figures 4, 5, 8 and table 2).  A
:class:`Lab` wraps one trace and memoises every predictor's per-branch
correctness bitmap plus the correlation data, so a full experiment run
simulates each predictor exactly once.

When an on-disk :class:`~repro.analysis.cache.ResultCache` is attached,
each lookup goes memo -> disk cache -> compute (storing back to both),
so a repeated run over unchanged traces performs no simulation at all.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.analysis.cache import ResultCache, result_key
from repro.analysis.config import DEFAULT_CONFIG, LabConfig
from repro.correlation.selection import Selection, select_for_trace
from repro.correlation.tagging import CorrelationData, collect_correlation_data
from repro.obs.metrics import METRICS
from repro.obs.tracing import span
from repro.predictors.base import BranchPredictor
from repro.predictors.pattern import best_fixed_length_correct
from repro.predictors.selective import SelectiveHistoryPredictor
from repro.trace.stats import TraceStatistics, compute_statistics
from repro.trace.trace import Trace


class Lab:
    """Memoised predictor runs over a single trace.

    Args:
        trace: The branch trace under analysis.
        config: Predictor sizing (defaults to the paper-scaled
            :data:`~repro.analysis.config.DEFAULT_CONFIG`).
        cache: Optional on-disk result cache consulted before simulating
            and written through after.
    """

    def __init__(
        self,
        trace: Trace,
        config: LabConfig = DEFAULT_CONFIG,
        cache: Optional[ResultCache] = None,
    ) -> None:
        self.trace = trace
        self.config = config
        self.cache = cache
        self._correct: Dict[str, np.ndarray] = {}
        self._correlation_data: Optional[CorrelationData] = None
        self._selections: Dict[Tuple[int, int], Dict[int, Selection]] = {}
        self._stats: Optional[TraceStatistics] = None
        self._factories: Dict[str, Callable[[], BranchPredictor]] = {
            "gshare": config.gshare,
            "if_gshare": config.if_gshare,
            "pas": config.pas,
            "if_pas": config.if_pas,
            "loop": config.loop,
            "block": config.block_pattern,
            "ideal_static": config.ideal_static,
        }

    # -- basic results ------------------------------------------------------

    @property
    def stats(self) -> TraceStatistics:
        """Summary statistics of the trace (memoised)."""
        if self._stats is None:
            self._stats = compute_statistics(self.trace)
        return self._stats

    def available_predictors(self) -> Tuple[str, ...]:
        """Names accepted by :meth:`correct` / :meth:`accuracy`."""
        return tuple(self._factories) + ("fixed_best",)

    def is_primed(self, task: str) -> bool:
        """Whether a task's result is already memoised in this lab."""
        if task == "correlation":
            return self._correlation_data is not None
        return task in self._correct

    def invalidate(self, task: str) -> bool:
        """Drop a task's memoised result; True if one was held.

        Only the in-memory memo is dropped -- the disk cache keeps its
        entry (quarantine handles corrupt ones).  Used when a folded
        result is discovered to be untrustworthy and must recompute.
        """
        if task == "correlation":
            had = self._correlation_data is not None
            self._correlation_data = None
            return had
        return self._correct.pop(task, None) is not None

    def store_correct(
        self, name: str, bitmap: np.ndarray, write_through: bool = True
    ) -> None:
        """Fold an externally-computed correctness bitmap into the memo.

        Used by the parallel scheduler; with ``write_through`` (the
        default) the bitmap also lands in the disk cache so the next
        cold process skips the simulation too.  Workers that already
        wrote the shared cache pass ``write_through=False``.
        """
        if len(bitmap) != len(self.trace):
            raise ValueError(
                f"bitmap length {len(bitmap)} != trace length {len(self.trace)}"
            )
        self._correct[name] = bitmap
        if write_through and self.cache is not None:
            self.cache.store_bitmap(
                self.trace.digest(), result_key(name, self.config), bitmap
            )

    def store_correlation(
        self, data: CorrelationData, write_through: bool = True
    ) -> None:
        """Fold externally-collected correlation data into the memo."""
        self._correlation_data = data
        if write_through and self.cache is not None:
            self.cache.store_correlation(self.trace.digest(), data)

    def _cached_bitmap(self, name: str) -> Optional[np.ndarray]:
        if self.cache is None:
            return None
        return self.cache.load_bitmap(
            self.trace.digest(), result_key(name, self.config)
        )

    def correct(self, name: str) -> np.ndarray:
        """Correctness bitmap of a named predictor (simulated once)."""
        cached = self._correct.get(name)
        if cached is not None:
            METRICS.inc("sim.memo_hits")
            return cached
        if name != "fixed_best" and name not in self._factories:
            raise KeyError(
                f"unknown predictor {name!r}; choose from "
                f"{self.available_predictors()}"
            )
        bitmap = self._cached_bitmap(name)
        if bitmap is None:
            METRICS.inc("sim.simulations")
            with span("simulate", predictor=name, length=len(self.trace)), \
                    METRICS.timer("sim.seconds"):
                if name == "fixed_best":
                    bitmap = best_fixed_length_correct(self.trace)
                else:
                    bitmap = self._factories[name]().simulate(self.trace)
            if self.cache is not None:
                self.cache.store_bitmap(
                    self.trace.digest(), result_key(name, self.config), bitmap
                )
        self._correct[name] = bitmap
        return bitmap

    def accuracy(self, name: str) -> float:
        """Overall accuracy of a named predictor."""
        if not len(self.trace):
            return 0.0
        return float(self.correct(name).mean())

    # -- correlation results ---------------------------------------------------

    def correlation_data(self) -> CorrelationData:
        """Tagged-correlation observations (collected once at window 32)."""
        if self._correlation_data is not None:
            METRICS.inc("sim.memo_hits")
        if self._correlation_data is None:
            data = None
            if self.cache is not None:
                data = self.cache.load_correlation(
                    self.trace.digest(), self.config.collection_window
                )
            if data is None:
                METRICS.inc("sim.correlation_collections")
                with span(
                    "collect_correlation", length=len(self.trace)
                ), METRICS.timer("sim.seconds"):
                    data = collect_correlation_data(
                        self.trace, window=self.config.collection_window
                    )
                if self.cache is not None:
                    self.cache.store_correlation(self.trace.digest(), data)
            self._correlation_data = data
        return self._correlation_data

    def selections(
        self, count: int, window: Optional[int] = None
    ) -> Dict[int, Selection]:
        """Oracle selections for a selective history of ``count`` branches."""
        if window is None:
            window = self.config.selective_window
        key = (count, window)
        cached = self._selections.get(key)
        if cached is None:
            METRICS.inc("sim.oracle_selections")
            with span(
                "select_oracle", count=count, window=window,
                length=len(self.trace),
            ), METRICS.timer("sim.seconds"):
                cached = select_for_trace(
                    self.correlation_data(),
                    count,
                    self.config.selection_config(window),
                )
            self._selections[key] = cached
        else:
            METRICS.inc("sim.memo_hits")
        return cached

    def selective_correct(
        self, count: int, window: Optional[int] = None
    ) -> np.ndarray:
        """Correctness bitmap of the selective-history predictor."""
        if window is None:
            window = self.config.selective_window
        name = f"selective_{count}_{window}"
        cached = self._correct.get(name)
        if cached is None:
            cached = self._cached_bitmap(name)
        if cached is None:
            METRICS.inc("sim.simulations")
            with span(
                "simulate", predictor=name, length=len(self.trace)
            ), METRICS.timer("sim.seconds"):
                predictor = SelectiveHistoryPredictor(
                    count, self.config.selection_config(window)
                )
                predictor.fit(
                    self.trace,
                    data=self.correlation_data(),
                    selections=self.selections(count, window),
                )
                cached = predictor.simulate(self.trace)
            if self.cache is not None:
                self.cache.store_bitmap(
                    self.trace.digest(), result_key(name, self.config), cached
                )
        self._correct[name] = cached
        return cached

    def selective_accuracy(self, count: int, window: Optional[int] = None) -> float:
        if not len(self.trace):
            return 0.0
        return float(self.selective_correct(count, window).mean())
