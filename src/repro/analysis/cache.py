"""Content-addressed on-disk result cache.

Every expensive artefact the analysis layer produces -- per-branch
correctness bitmaps, the tagged-correlation collection, generated
benchmark traces -- is a pure function of its inputs.  This module keys
each artefact by a digest of exactly those inputs:

* **bitmaps** by ``(trace digest, result key, schema version)``, where
  the result key names the predictor task and its configuration;
* **correlation data** by ``(trace digest, collection window, schema
  version)``;
* **generated traces** by ``(benchmark name, length, run seed, workload
  schema, schema version)``.

Entries live under ``.repro-cache/`` (override with the
:data:`ENV_CACHE_DIR` environment variable or ``--cache-dir``) as
compressed ``.npz`` files, sharded by the first byte of the key digest.
Writes are atomic (temp file + ``os.replace``) so concurrent workers can
share one cache directory; any load failure -- missing file, truncation,
schema drift -- counts as a miss and never propagates.

A *corrupt* entry (present but unreadable or undecodable) is not just a
miss: it is moved into ``<root>/quarantine/`` so the bad bytes are
preserved for inspection, can never be loaded again, and the recompute
that follows overwrites a clean entry at the original path.  Quarantine
events are counted (``cache.quarantined``) and surfaced by ``repro
cache stats``; ``repro cache clear`` reclaims the quarantine too.

Invalidation is purely structural: bump :data:`SCHEMA_VERSION` when the
serialised layout or any simulation semantics change, and
:data:`WORKLOAD_SCHEMA` when the workload generator's output changes for
an unchanged ``(name, length, seed)``.  Either bump changes every key,
so stale entries are simply never addressed again (``repro cache clear``
reclaims the disk).
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from array import array
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.correlation.tagging import BranchCorrelationData, CorrelationData
from repro.obs.metrics import METRICS
from repro.trace.trace import Trace

#: Bump when the on-disk layout or any cached result's semantics change.
SCHEMA_VERSION = 1

#: Bump when the workload generator changes what an unchanged
#: ``(name, length, run_seed)`` triple produces.
WORKLOAD_SCHEMA = 1

#: Environment variable overriding the cache directory.
ENV_CACHE_DIR = "REPRO_CACHE_DIR"

#: Default cache directory (relative to the current working directory).
DEFAULT_CACHE_DIRNAME = ".repro-cache"

#: Subdirectory of the cache root holding quarantined corrupt entries.
QUARANTINE_DIRNAME = "quarantine"


def result_key(task: str, config: object) -> str:
    """Canonical cache-key string for a Lab task under a configuration.

    Keys by the projection of the configuration onto the fields the
    task actually reads (see ``analysis.config.TASK_CONFIG_FIELDS``),
    so a sweep over one predictor's sizing re-keys only that
    predictor's bitmaps -- every other task's entries are shared across
    grid points.  Unknown tasks project onto every field, which keeps
    the old conservative behaviour for predictors without a
    declaration.
    """
    from repro.analysis.config import task_config_key

    return f"{task}|{task_config_key(task, config)}"


def default_cache_dir() -> Path:
    """The cache root: ``$REPRO_CACHE_DIR`` or ``./.repro-cache``."""
    override = os.environ.get(ENV_CACHE_DIR)
    if override:
        return Path(override)
    return Path(DEFAULT_CACHE_DIRNAME)


@dataclass
class CacheStats:
    """Hit/miss accounting for one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    errors: int = 0
    quarantined: int = 0

    def merge(self, other: "CacheStats") -> None:
        self.hits += other.hits
        self.misses += other.misses
        self.writes += other.writes
        self.errors += other.errors
        self.quarantined += other.quarantined

    def summary(self) -> str:
        text = (
            f"{self.hits} hits, {self.misses} misses, "
            f"{self.writes} writes, {self.errors} errors"
        )
        if self.quarantined:
            text += f", {self.quarantined} quarantined"
        return text


class ResultCache:
    """Content-addressed store for bitmaps, correlation data and traces.

    Args:
        root: Cache directory; defaults to :func:`default_cache_dir`.
            Created lazily on first write.
    """

    def __init__(self, root: Union[str, Path, None] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.stats = CacheStats()

    # -- keying ------------------------------------------------------------

    @staticmethod
    def _digest(*parts: str) -> str:
        h = hashlib.blake2b(digest_size=16)
        for part in parts:
            h.update(part.encode())
            h.update(b"\x00")
        return h.hexdigest()

    def _path(self, kind: str, key: str) -> Path:
        return self.root / kind / key[:2] / f"{key}.npz"

    def entry_path(self, kind: str, key: str) -> Path:
        """The on-disk path an entry of ``kind`` under ``key`` lives at.

        Public so tooling (fault injection, forensic scripts) can reach
        a specific entry without re-deriving the sharding scheme.
        """
        return self._path(kind, key)

    @property
    def quarantine_dir(self) -> Path:
        """Where corrupt entries are moved (``<root>/quarantine``)."""
        return self.root / QUARANTINE_DIRNAME

    def _record_miss(self, kind: str, error: bool = False) -> None:
        """Count a miss (and optionally an error) per entry kind."""
        self.stats.misses += 1
        METRICS.inc(f"cache.{kind}.misses")
        if error:
            self.stats.errors += 1
            METRICS.inc("cache.errors")

    def _record_hit(self, kind: str) -> None:
        self.stats.hits += 1
        METRICS.inc(f"cache.{kind}.hits")

    def _quarantine(self, path: Path, kind: str) -> None:
        """Move a corrupt entry aside so it is never loaded again.

        The move is atomic (same filesystem), preserves the bytes for
        inspection, and frees the original path for the clean rewrite
        that follows the recompute.  Counted as a miss *and* a
        quarantine; a failed move falls back to the old
        miss-with-error behaviour (the entry stays, the caller still
        recomputes and overwrites it).
        """
        self._record_miss(kind, error=True)
        try:
            target_dir = self.quarantine_dir
            target_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, target_dir / f"{kind}-{path.name}")
        except OSError:
            return
        self.stats.quarantined += 1
        METRICS.inc("cache.quarantined")

    def _load(self, path: Path, kind: str) -> Optional[dict]:
        """Load an npz entry; a corrupt one is quarantined, not kept."""
        try:
            with np.load(path) as payload:
                return {name: payload[name] for name in payload.files}
        except FileNotFoundError:
            self._record_miss(kind)
            return None
        except Exception:
            # Truncated/corrupted/foreign file: quarantine it so the
            # caller recomputes and writes a clean entry in its place.
            self._quarantine(path, kind)
            return None

    def _store(self, path: Path, kind: str, **arrays: np.ndarray) -> None:
        """Atomically write an npz entry (temp file + rename)."""
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=path.parent, prefix=path.stem, suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as fh:
                    np.savez_compressed(fh, **arrays)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
            self.stats.writes += 1
            METRICS.inc(f"cache.{kind}.writes")
            try:
                METRICS.inc("cache.bytes_written", path.stat().st_size)
            except OSError:
                pass
        except OSError:
            # A read-only or full disk must never fail the computation.
            self.stats.errors += 1
            METRICS.inc("cache.errors")

    # -- correctness bitmaps ----------------------------------------------

    def bitmap_key(self, trace_digest: str, result_key: str) -> str:
        return self._digest("bitmap", str(SCHEMA_VERSION), trace_digest, result_key)

    def load_bitmap(
        self, trace_digest: str, result_key: str
    ) -> Optional[np.ndarray]:
        """A cached correctness bitmap, or None on miss."""
        path = self._path("bitmap", self.bitmap_key(trace_digest, result_key))
        payload = self._load(path, "bitmap")
        if payload is None:
            return None
        try:
            length = int(payload["length"])
            bitmap = np.unpackbits(payload["packed"], count=length).astype(bool)
        except Exception:
            self._quarantine(path, "bitmap")
            return None
        self._record_hit("bitmap")
        return bitmap

    def store_bitmap(
        self, trace_digest: str, result_key: str, bitmap: np.ndarray
    ) -> None:
        self._store(
            self._path("bitmap", self.bitmap_key(trace_digest, result_key)),
            "bitmap",
            packed=np.packbits(np.asarray(bitmap, dtype=bool)),
            length=np.int64(len(bitmap)),
        )

    # -- correlation data --------------------------------------------------

    def correlation_key(self, trace_digest: str, window: int) -> str:
        return self._digest(
            "corr", str(SCHEMA_VERSION), trace_digest, f"window={window}"
        )

    def load_correlation(
        self, trace_digest: str, window: int
    ) -> Optional[CorrelationData]:
        """Cached tagged-correlation observations, or None on miss."""
        path = self._path("corr", self.correlation_key(trace_digest, window))
        payload = self._load(path, "corr")
        if payload is None:
            return None
        try:
            data = _correlation_from_arrays(payload)
        except Exception:
            self._quarantine(path, "corr")
            return None
        self._record_hit("corr")
        return data

    def store_correlation(self, trace_digest: str, data: CorrelationData) -> None:
        self._store(
            self._path("corr", self.correlation_key(trace_digest, data.window)),
            "corr",
            **_correlation_to_arrays(data),
        )

    # -- generated benchmark traces ---------------------------------------

    def trace_key(
        self,
        name: str,
        length: Optional[int],
        run_seed: int,
        variant: str = "",
    ) -> str:
        """Cache key of one generated trace.

        ``variant`` is the source-identity suffix (a canonical mix
        signature); ``""`` -- the default, and every pre-source caller
        -- appends nothing, so legacy entries keep their keys.
        """
        parts = [
            "trace",
            str(SCHEMA_VERSION),
            str(WORKLOAD_SCHEMA),
            name,
            str(length),
            str(run_seed),
        ]
        if variant:
            parts.append(variant)
        return self._digest(*parts)

    def load_trace(
        self,
        name: str,
        length: Optional[int],
        run_seed: int,
        variant: str = "",
    ) -> Optional[Trace]:
        """A cached generated benchmark trace, or None on miss."""
        path = self._path(
            "trace", self.trace_key(name, length, run_seed, variant)
        )
        payload = self._load(path, "trace")
        if payload is None:
            return None
        try:
            count = int(payload["length"])
            trace = Trace(
                payload["pc"],
                payload["target"],
                np.unpackbits(payload["taken"], count=count).astype(bool),
            )
        except Exception:
            self._quarantine(path, "trace")
            return None
        self._record_hit("trace")
        return trace

    def store_trace(
        self,
        name: str,
        length: Optional[int],
        run_seed: int,
        trace: Trace,
        variant: str = "",
    ) -> None:
        self._store(
            self._path(
                "trace", self.trace_key(name, length, run_seed, variant)
            ),
            "trace",
            pc=trace.pc,
            target=trace.target,
            taken=np.packbits(trace.taken),
            length=np.int64(len(trace)),
        )

    # -- maintenance -------------------------------------------------------

    def _entries(self):
        # A missing, deleted-underneath, or plain-file root must never
        # fail maintenance commands: report an empty cache instead.
        try:
            if not self.root.is_dir():
                return
            kind_dirs = sorted(self.root.iterdir())
        except OSError:
            return
        for kind_dir in kind_dirs:
            if kind_dir.name == QUARANTINE_DIRNAME:
                continue
            if kind_dir.is_dir():
                yield from sorted(kind_dir.glob("*/*.npz"))

    def quarantined_entries(self):
        """Paths of quarantined corrupt entries, sorted."""
        try:
            if not self.quarantine_dir.is_dir():
                return []
            return sorted(
                path for path in self.quarantine_dir.iterdir()
                if path.is_file()
            )
        except OSError:
            return []

    def quarantine_count(self) -> int:
        return len(self.quarantined_entries())

    def entry_count(self) -> int:
        return sum(1 for _ in self._entries())

    def total_bytes(self) -> int:
        total = 0
        for path in self._entries():
            try:
                total += path.stat().st_size
            except OSError:
                # Entry vanished between listing and stat (concurrent
                # clear); count what is still there.
                continue
        return total

    def clear(self) -> int:
        """Delete every cache entry (quarantine included); returns the
        number removed."""
        removed = 0
        for path in list(self._entries()) + self.quarantined_entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                self.stats.errors += 1
        return removed


# -- correlation (de)serialisation ----------------------------------------
#
# CorrelationData is a two-level dict of numpy arrays and array('q')
# buffers.  It flattens into ten global arrays -- offsets delimit the
# per-branch and per-tag slices -- so the whole structure round-trips
# through one npz file with no pickling.


def _correlation_to_arrays(data: CorrelationData) -> dict:
    pcs = []
    branch_offsets = [0]
    inst_indices = []
    inst_outcomes = []
    tag_branch = []
    tag_scheme = []
    tag_pc = []
    tag_instance = []
    tag_offsets = [0]
    tag_values = []
    for branch_index, (pc, branch) in enumerate(sorted(data.branches.items())):
        pcs.append(pc)
        inst_indices.append(branch.trace_indices)
        inst_outcomes.append(branch.outcomes)
        branch_offsets.append(branch_offsets[-1] + len(branch.trace_indices))
        for (scheme, tagged_pc, instance), entries in branch.tag_entries.items():
            tag_branch.append(branch_index)
            tag_scheme.append(scheme)
            tag_pc.append(tagged_pc)
            tag_instance.append(instance)
            tag_offsets.append(tag_offsets[-1] + len(entries))
            tag_values.append(np.frombuffer(entries, dtype=np.int64))
    outcomes = (
        np.concatenate(inst_outcomes)
        if inst_outcomes
        else np.zeros(0, dtype=bool)
    )
    return dict(
        window=np.int64(data.window),
        trace_length=np.int64(data.trace_length),
        pcs=np.asarray(pcs, dtype=np.uint64),
        branch_offsets=np.asarray(branch_offsets, dtype=np.int64),
        inst_indices=(
            np.concatenate(inst_indices)
            if inst_indices
            else np.zeros(0, dtype=np.int64)
        ),
        inst_outcomes=np.packbits(outcomes),
        tag_branch=np.asarray(tag_branch, dtype=np.int64),
        tag_scheme=np.asarray(tag_scheme, dtype=np.int64),
        tag_pc=np.asarray(tag_pc, dtype=np.uint64),
        tag_instance=np.asarray(tag_instance, dtype=np.int64),
        tag_offsets=np.asarray(tag_offsets, dtype=np.int64),
        tag_values=(
            np.concatenate(tag_values)
            if tag_values
            else np.zeros(0, dtype=np.int64)
        ),
    )


def _correlation_from_arrays(payload: dict) -> CorrelationData:
    pcs = payload["pcs"]
    branch_offsets = payload["branch_offsets"]
    inst_indices = payload["inst_indices"]
    total = int(branch_offsets[-1]) if len(branch_offsets) else 0
    outcomes = np.unpackbits(payload["inst_outcomes"], count=total).astype(bool)
    branches = {}
    branch_list = []
    for i in range(len(pcs)):
        start, end = int(branch_offsets[i]), int(branch_offsets[i + 1])
        branch = BranchCorrelationData(
            pc=int(pcs[i]),
            trace_indices=inst_indices[start:end].copy(),
            outcomes=outcomes[start:end].copy(),
            tag_entries={},
        )
        branches[branch.pc] = branch
        branch_list.append(branch)
    tag_offsets = payload["tag_offsets"]
    tag_values = payload["tag_values"]
    tag_branch = payload["tag_branch"]
    tag_scheme = payload["tag_scheme"]
    tag_pc = payload["tag_pc"]
    tag_instance = payload["tag_instance"]
    for t in range(len(tag_branch)):
        entries = array("q")
        entries.frombytes(
            tag_values[int(tag_offsets[t]) : int(tag_offsets[t + 1])]
            .astype(np.int64)
            .tobytes()
        )
        branch_list[int(tag_branch[t])].tag_entries[
            (int(tag_scheme[t]), int(tag_pc[t]), int(tag_instance[t]))
        ] = entries
    return CorrelationData(
        window=int(payload["window"]),
        trace_length=int(payload["trace_length"]),
        branches=branches,
    )
