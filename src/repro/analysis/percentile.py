"""Percentile curves of per-branch accuracy differences (figure 9).

Figure 9 plots, for every percentile of *dynamic* branches, the
difference between gshare's and PAs' accuracy on the static branch that
dynamic branch belongs to, sorted ascending.  The left tail shows
branches where PAs is far better, the right tail where gshare is; the
areas between curve and axis are the accuracy a single-component
predictor would forfeit -- the paper's argument for hybrids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.trace.trace import Trace


@dataclass(frozen=True)
class PercentileCurve:
    """A dynamic-weighted percentile curve of accuracy differences.

    Attributes:
        percentiles: The sampled percentile positions (0-100).
        differences: Accuracy difference (percentage points, predictor A
            minus predictor B) at each percentile.
    """

    percentiles: np.ndarray
    differences: np.ndarray

    def area_b_better(self) -> float:
        """Mean advantage (percentage points) of B where B is better."""
        negative = np.minimum(self.differences, 0.0)
        return float(-negative.mean())

    def area_a_better(self) -> float:
        """Mean advantage (percentage points) of A where A is better."""
        positive = np.maximum(self.differences, 0.0)
        return float(positive.mean())

    def tail(self, percentile: float) -> float:
        """Difference at a given percentile (interpolated)."""
        return float(
            np.interp(percentile, self.percentiles, self.differences)
        )


def percentile_difference_curve(
    trace: Trace,
    correct_a: np.ndarray,
    correct_b: np.ndarray,
    percentiles: Sequence[float] = tuple(range(0, 101, 5)),
) -> PercentileCurve:
    """Figure 9's curve for two correctness bitmaps over one trace.

    Every *dynamic* branch contributes its static branch's accuracy
    difference; the resulting weighted distribution is sampled at the
    requested percentiles.

    Args:
        trace: The simulated trace.
        correct_a: Bitmap of predictor A (gshare in the paper).
        correct_b: Bitmap of predictor B (PAs in the paper).
        percentiles: Positions to sample (paper plots 0..100 by 5).
    """
    if len(correct_a) != len(trace) or len(correct_b) != len(trace):
        raise ValueError("bitmaps must align with the trace")
    per_dynamic = np.zeros(len(trace), dtype=np.float64)
    for _pc, indices in trace.indices_by_pc().items():
        diff = (correct_a[indices].mean() - correct_b[indices].mean()) * 100.0
        per_dynamic[indices] = diff
    ordered = np.sort(per_dynamic)
    positions = np.asarray(list(percentiles), dtype=np.float64)
    if len(ordered):
        samples = np.percentile(ordered, positions)
    else:
        samples = np.zeros_like(positions)
    return PercentileCurve(percentiles=positions, differences=samples)
