"""Pattern-history-table interference measurement.

The paper leans on Talcott et al. and Young et al. (section 2.2): PHT
interference hurts two-level predictors, which is why its analyses use
interference-free instruments.  This module quantifies that effect for a
gshare configuration directly: every PHT access is classified by whether
the entry was last trained by a *different* static branch, and
misprediction rates are accounted separately for conflicting and private
accesses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.trace.trace import Trace


@dataclass(frozen=True)
class InterferenceReport:
    """Interference statistics for one gshare run over one trace.

    Attributes:
        accesses: Total PHT accesses (= dynamic branches).
        conflict_accesses: Accesses whose entry was last updated by a
            different static branch.
        conflict_mispredictions: Mispredictions among conflict accesses.
        private_mispredictions: Mispredictions among non-conflict
            accesses (first-touch accesses count as private).
        occupied_entries: Distinct PHT entries touched during the run.
        pht_size: Total PHT entries.
    """

    accesses: int
    conflict_accesses: int
    conflict_mispredictions: int
    private_mispredictions: int
    occupied_entries: int
    pht_size: int

    @property
    def conflict_rate(self) -> float:
        """Fraction of accesses that hit another branch's entry."""
        return self.conflict_accesses / self.accesses if self.accesses else 0.0

    @property
    def conflict_misprediction_rate(self) -> float:
        """Misprediction rate restricted to conflict accesses."""
        if not self.conflict_accesses:
            return 0.0
        return self.conflict_mispredictions / self.conflict_accesses

    @property
    def private_misprediction_rate(self) -> float:
        """Misprediction rate restricted to private accesses."""
        private = self.accesses - self.conflict_accesses
        return self.private_mispredictions / private if private else 0.0

    @property
    def occupancy(self) -> float:
        """Fraction of the PHT touched at least once."""
        return self.occupied_entries / self.pht_size if self.pht_size else 0.0


def measure_gshare_interference(
    trace: Trace,
    history_bits: int = 16,
    pht_bits: int = 16,
    counter_bits: int = 2,
) -> InterferenceReport:
    """Run gshare over ``trace`` while attributing PHT accesses.

    The simulated predictor is identical to
    :class:`~repro.predictors.twolevel.GsharePredictor` (same indexing,
    counters, and initialisation); the extra bookkeeping records which
    static branch last trained each entry.
    """
    if history_bits < 0:
        raise ValueError(f"history_bits must be >= 0, got {history_bits}")
    if pht_bits < 1:
        raise ValueError(f"pht_bits must be >= 1, got {pht_bits}")
    history_mask = (1 << history_bits) - 1
    pht_mask = (1 << pht_bits) - 1
    counter_max = (1 << counter_bits) - 1
    threshold = 1 << (counter_bits - 1)
    pht = [threshold] * (1 << pht_bits)  # weakly taken, as everywhere
    owner = [-1] * (1 << pht_bits)

    history = 0
    conflicts = 0
    conflict_misses = 0
    private_misses = 0
    occupied = 0
    pcs = (trace.pc >> 2).tolist()
    takens = trace.taken.tolist()
    for i in range(len(trace)):
        pc = pcs[i]
        taken = takens[i]
        index = (history ^ pc) & pht_mask
        value = pht[index]
        misprediction = (value >= threshold) != taken
        previous_owner = owner[index]
        if previous_owner == -1:
            occupied += 1
            if misprediction:
                private_misses += 1
        elif previous_owner != pc:
            conflicts += 1
            if misprediction:
                conflict_misses += 1
        elif misprediction:
            private_misses += 1
        if taken:
            if value < counter_max:
                pht[index] = value + 1
        elif value > 0:
            pht[index] = value - 1
        owner[index] = pc
        history = ((history << 1) | taken) & history_mask

    return InterferenceReport(
        accesses=len(trace),
        conflict_accesses=conflicts,
        conflict_mispredictions=conflict_misses,
        private_mispredictions=private_misses,
        occupied_entries=occupied,
        pht_size=1 << pht_bits,
    )
