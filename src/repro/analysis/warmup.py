"""Training-time analysis (the paper's section 3.6.3 effect, quantified).

The paper attributes part of gshare's unexploited correlation to
"increased training time": a long noisy history fragments a branch's
executions over many counters, each of which must train separately.
This module measures that directly, per predictor, as accuracy over
per-branch execution age -- how well the k-th execution of a static
branch is predicted, aggregated over all branches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.trace.trace import Trace


@dataclass(frozen=True)
class WarmupCurve:
    """Accuracy as a function of per-branch execution age.

    Attributes:
        bucket_edges: Age-bucket boundaries; bucket i covers executions
            with age in [edges[i], edges[i+1]).
        accuracies: Prediction accuracy within each bucket.
        counts: Dynamic branches in each bucket.
    """

    bucket_edges: Tuple[int, ...]
    accuracies: Tuple[float, ...]
    counts: Tuple[int, ...]

    def cold_accuracy(self) -> float:
        """Accuracy of the first bucket (coldest executions)."""
        return self.accuracies[0]

    def warm_accuracy(self) -> float:
        """Accuracy of the last *populated* bucket (steady state).

        Short traces may leave the deepest age bucket empty; the steady
        state is then the deepest bucket that saw executions.
        """
        for accuracy, count in zip(
            reversed(self.accuracies), reversed(self.counts)
        ):
            if count:
                return accuracy
        return 0.0

    def training_cost(self) -> float:
        """Steady-state minus cold accuracy (points lost to training)."""
        return self.warm_accuracy() - self.cold_accuracy()


DEFAULT_EDGES = (0, 4, 16, 64, 256, 1 << 62)


def warmup_curve(
    trace: Trace,
    correct: np.ndarray,
    bucket_edges: Sequence[int] = DEFAULT_EDGES,
) -> WarmupCurve:
    """Bucket a correctness bitmap by per-branch execution age.

    Args:
        trace: The simulated trace.
        correct: Per-dynamic-branch correctness bitmap.
        bucket_edges: Increasing age boundaries; the last edge bounds the
            final bucket (use a huge value for "everything after").
    """
    if len(correct) != len(trace):
        raise ValueError(
            f"bitmap length {len(correct)} != trace length {len(trace)}"
        )
    edges = list(bucket_edges)
    if len(edges) < 2 or edges != sorted(edges):
        raise ValueError("bucket_edges must be at least two increasing values")

    # Per-dynamic-branch age: how many prior executions its static
    # branch had.
    ages = np.zeros(len(trace), dtype=np.int64)
    for indices in trace.indices_by_pc().values():
        ages[indices] = np.arange(len(indices))

    accuracies = []
    counts = []
    for low, high in zip(edges, edges[1:]):
        mask = (ages >= low) & (ages < high)
        count = int(mask.sum())
        counts.append(count)
        accuracies.append(float(correct[mask].mean()) if count else 0.0)
    return WarmupCurve(
        bucket_edges=tuple(edges),
        accuracies=tuple(accuracies),
        counts=tuple(counts),
    )
