"""Shared-memory trace shipping for the chunked priming path.

Pickling a whole :class:`~repro.trace.trace.Trace` into every pool
submission copies the columns once per job per worker; at paper scale
(tens of millions of branches) that is the difference between flat and
linear resident memory.  The chunked scheduler instead publishes each
benchmark's columns once into a :class:`multiprocessing.shared_memory`
segment and ships ``(segment name, window)`` tuples -- workers attach
and build zero-copy :class:`Trace` windows over the same physical
pages.

Layout of a segment for an ``n``-branch trace::

    0        n * uint64  -- pc
    8n       n * uint64  -- target
    16n      n * bool    -- taken (one byte per branch)

The parent owns the segment lifecycle: :meth:`SharedTrace.create` ...
:meth:`SharedTrace.unlink` bracket a priming pass.  Workers must attach
*untracked* -- CPython's resource tracker otherwise unlinks the segment
when the first worker exits (bpo-39959) -- which is what
:func:`attach_window` encapsulates.
"""

from __future__ import annotations

from multiprocessing import shared_memory
from typing import Tuple

import numpy as np

from repro.trace.trace import Trace

__all__ = ["SharedTrace", "attach_window"]


class SharedTrace:
    """Parent-side owner of one trace's columns in shared memory."""

    def __init__(self, shm: shared_memory.SharedMemory, length: int) -> None:
        self._shm = shm
        self.length = length

    @property
    def name(self) -> str:
        """The segment name workers attach by."""
        return self._shm.name

    @classmethod
    def create(cls, trace: Trace) -> "SharedTrace":
        """Publish ``trace``'s columns into a fresh segment."""
        n = len(trace)
        shm = shared_memory.SharedMemory(create=True, size=max(1, 17 * n))
        pc = np.ndarray(n, dtype="<u8", buffer=shm.buf, offset=0)
        target = np.ndarray(n, dtype="<u8", buffer=shm.buf, offset=8 * n)
        taken = np.ndarray(n, dtype=np.bool_, buffer=shm.buf, offset=16 * n)
        pc[:] = trace.pc
        target[:] = trace.target
        taken[:] = trace.taken
        del pc, target, taken
        return cls(shm, n)

    def unlink(self) -> None:
        """Release the segment (idempotent); windows become invalid."""
        if self._shm is None:
            return
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass
        self._shm = None

    def __enter__(self) -> "SharedTrace":
        return self

    def __exit__(self, *exc_info) -> None:
        self.unlink()


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to a segment without resource-tracker registration.

    Python 3.13 grew ``track=False``; earlier versions need the
    documented bpo-39959 workaround of unregistering after the fact,
    otherwise a worker's exit unlinks the parent's live segment.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        # Pre-3.13: suppress the tracker registration outright.  The
        # register/unregister-after pattern is racy -- the tracker's
        # per-type name set dedupes concurrent registers from sibling
        # workers, so the second unregister dies with a KeyError in the
        # tracker process.  Workers run one attempt at a time, so the
        # temporary patch cannot clobber a concurrent register.
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


def attach_window(
    name: str, length: int, start: int, stop: int
) -> Tuple[Trace, shared_memory.SharedMemory]:
    """Worker-side view of ``[start, stop)`` of a published trace.

    The returned trace's columns alias the segment; the caller must
    drop the trace before closing the returned handle.
    """
    shm = _attach_untracked(name)
    n = length
    pc = np.ndarray(n, dtype="<u8", buffer=shm.buf, offset=0)[start:stop]
    target = np.ndarray(n, dtype="<u8", buffer=shm.buf, offset=8 * n)[start:stop]
    taken = np.ndarray(n, dtype=np.bool_, buffer=shm.buf, offset=16 * n)[start:stop]
    return Trace(pc, target, taken), shm
