"""Top-offender reports: which branches cost a predictor most.

Per-branch misprediction accounting was the paper's working method (its
classifications all start from "which predictor is best on this branch");
this module packages the complementary diagnostic view: rank static
branches by how many mispredictions they contribute.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.trace.trace import Trace


@dataclass(frozen=True)
class BranchOffender:
    """One static branch's contribution to a predictor's mispredictions.

    Attributes:
        pc: The branch address.
        executions: Dynamic execution count.
        mispredictions: Mispredicted executions.
        accuracy: Prediction accuracy on this branch.
        taken_rate: The branch's taken rate (bias context).
        misprediction_share: Fraction of the predictor's *total*
            mispredictions caused by this branch.
    """

    pc: int
    executions: int
    mispredictions: int
    accuracy: float
    taken_rate: float
    misprediction_share: float


def top_offenders(
    trace: Trace, correct: np.ndarray, count: int = 10
) -> List[BranchOffender]:
    """The ``count`` branches contributing the most mispredictions.

    Args:
        trace: The simulated trace.
        correct: Per-dynamic-branch correctness bitmap.
        count: Maximum number of offenders to return.

    Returns:
        Offenders sorted by misprediction count, descending; ties broken
        by address for determinism.
    """
    if len(correct) != len(trace):
        raise ValueError(
            f"bitmap length {len(correct)} != trace length {len(trace)}"
        )
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    total_mispredictions = int((~correct).sum())
    offenders = []
    for pc, indices in trace.indices_by_pc().items():
        branch_correct = correct[indices]
        mispredictions = int((~branch_correct).sum())
        if mispredictions == 0:
            continue
        offenders.append(
            BranchOffender(
                pc=pc,
                executions=len(indices),
                mispredictions=mispredictions,
                accuracy=float(branch_correct.mean()),
                taken_rate=float(trace.taken[indices].mean()),
                misprediction_share=(
                    mispredictions / total_mispredictions
                    if total_mispredictions
                    else 0.0
                ),
            )
        )
    offenders.sort(key=lambda o: (-o.mispredictions, o.pc))
    return offenders[:count]


def render_offenders(offenders: List[BranchOffender]) -> str:
    """A monospace table of offender rows."""
    lines = [
        f"{'pc':>10s} {'execs':>8s} {'misses':>8s} {'accuracy':>9s} "
        f"{'taken':>6s} {'share':>7s}"
    ]
    for offender in offenders:
        lines.append(
            f"{offender.pc:#10x} {offender.executions:8d} "
            f"{offender.mispredictions:8d} {offender.accuracy * 100:8.2f}% "
            f"{offender.taken_rate:6.2f} "
            f"{offender.misprediction_share * 100:6.1f}%"
        )
    return "\n".join(lines)
