"""Pipeline-cost model: from prediction accuracy to CPI.

The paper opens with the motivation: "Pipeline flushes due to branch
mispredictions is one of the most serious problems facing the designer
of a deeply pipelined, superscalar processor."  This module closes that
loop with the standard analytical model, so accuracy differences can be
read as execution-time differences.

CPI = base_cpi + branch_fraction * (1 - accuracy) * misprediction_penalty
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PipelineModel:
    """An analytical pipeline cost model.

    Attributes:
        base_cpi: Cycles per instruction with perfect branch prediction.
        branch_fraction: Conditional branches per instruction (SPECint is
            classically ~0.15-0.20).
        misprediction_penalty: Flush cost in cycles (late-1990s deep
            pipelines: ~4-12; the default 7 suits the paper's era).
    """

    base_cpi: float = 1.0
    branch_fraction: float = 0.18
    misprediction_penalty: float = 7.0

    def __post_init__(self) -> None:
        if self.base_cpi <= 0:
            raise ValueError(f"base_cpi must be > 0, got {self.base_cpi}")
        if not 0.0 <= self.branch_fraction <= 1.0:
            raise ValueError(
                f"branch_fraction must be in [0, 1], got {self.branch_fraction}"
            )
        if self.misprediction_penalty < 0:
            raise ValueError(
                f"misprediction_penalty must be >= 0, got "
                f"{self.misprediction_penalty}"
            )

    def cpi(self, accuracy: float) -> float:
        """Cycles per instruction at the given prediction accuracy."""
        if not 0.0 <= accuracy <= 1.0:
            raise ValueError(f"accuracy must be in [0, 1], got {accuracy}")
        return (
            self.base_cpi
            + self.branch_fraction * (1.0 - accuracy) * self.misprediction_penalty
        )

    def speedup(self, baseline_accuracy: float, improved_accuracy: float) -> float:
        """Relative speedup from improving prediction accuracy.

        Returns:
            baseline CPI / improved CPI (> 1 means faster).
        """
        return self.cpi(baseline_accuracy) / self.cpi(improved_accuracy)

    def mispredictions_per_kilo_instruction(self, accuracy: float) -> float:
        """The MPKI metric commonly used in later predictor literature."""
        if not 0.0 <= accuracy <= 1.0:
            raise ValueError(f"accuracy must be in [0, 1], got {accuracy}")
        return 1000.0 * self.branch_fraction * (1.0 - accuracy)
