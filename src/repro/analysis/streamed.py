"""Streamed analysis: task folds over a :class:`TraceStream`.

Two consumers:

* The chunked priming path (:func:`repro.analysis.parallel.prime_labs`
  with ``chunk_branches`` set) folds the *causal* simulation tasks --
  the ones whose kernels carry their predictor state across
  ``simulate()`` calls -- window by window, in-process or across the
  worker pool.  :data:`CHUNKABLE_TASKS` names them;
  :func:`chunked_bitmap` is the in-process fold and the reference the
  contract/property tests compare against.

* :func:`stream_report` is the bounded-memory accuracy report behind
  ``benchmarks/check_rss.py`` and paper-scale runs: it never holds a
  whole-trace bitmap, reducing each window to counts as it goes.  The
  non-causal paper baselines (``ideal_static``, ``fixed_best``) are
  whole-run *definitions* -- the ideal static direction is the majority
  over the full run -- so they get dedicated streaming folds here that
  accumulate per-static-branch state (a few entries per static branch,
  not per dynamic branch) instead of materialising columns.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.analysis.config import LabConfig
from repro.obs.metrics import METRICS
from repro.sim.fold import fold_correct_count, fold_simulate
from repro.trace.stream import TraceStream
from repro.trace.trace import Trace

#: Simulation tasks whose kernels resume from written-back state, so a
#: chunked fold is bit-identical to the whole-trace run.  The whole-run
#: baselines (``ideal_static``, ``fixed_best``) and the correlation
#: collection are deliberately absent: they are defined over the full
#: trace and keep the unchunked path.
CHUNKABLE_TASKS: Tuple[str, ...] = (
    "gshare",
    "if_gshare",
    "pas",
    "if_pas",
    "loop",
    "block",
)


def task_predictor(config: LabConfig, task: str):
    """A fresh predictor instance for one chunkable task."""
    from repro.analysis.parallel import _FACTORY_ATTRS

    if task not in CHUNKABLE_TASKS:
        raise ValueError(
            f"task {task!r} is not chunkable; choose from {CHUNKABLE_TASKS}"
        )
    return getattr(config, _FACTORY_ATTRS[task])()


def chunked_bitmap(stream: TraceStream, config: LabConfig, task: str) -> np.ndarray:
    """Whole-trace correctness bitmap of ``task``, folded over chunks.

    Bit-identical to ``compute_task(stream.whole(), config, task)`` for
    every :data:`CHUNKABLE_TASKS` member.
    """
    METRICS.inc("sim.chunked_simulations")
    return fold_simulate(task_predictor(config, task), stream.chunks())


def ideal_static_count(chunks: Iterable[Trace]) -> Tuple[int, int]:
    """Streamed ``(correct, total)`` of the ideal static predictor.

    One pass accumulating per-static-branch ``(executions, taken)``
    counts; the majority direction (ties toward taken, matching
    :func:`repro.trace.stats.ideal_static_correct`) determines the
    correct count without ever materialising the bitmap.
    """
    counts: Dict[int, List[int]] = {}
    total = 0
    for chunk in chunks:
        total += len(chunk)
        uniq, inverse = np.unique(chunk.pc, return_inverse=True)
        executions = np.bincount(inverse, minlength=len(uniq))
        taken = np.bincount(
            inverse, weights=chunk.taken, minlength=len(uniq)
        ).astype(np.int64)
        for pc, execs, tk in zip(
            uniq.tolist(), executions.tolist(), taken.tolist()
        ):
            entry = counts.setdefault(pc, [0, 0])
            entry[0] += execs
            entry[1] += tk
    correct = sum(
        taken if 2 * taken >= execs else execs - taken
        for execs, taken in counts.values()
    )
    return correct, total


def fixed_best_count(
    chunks: Iterable[Trace], max_k: Optional[int] = None
) -> Tuple[int, int]:
    """Streamed ``(correct, total)`` of the best-of-k fixed baseline.

    Matches :func:`repro.predictors.pattern.best_fixed_length_correct`:
    each static branch uses its individually best pattern length (ties
    toward the shortest ``k``).  The fold keeps each static branch's
    outcome sequence as packed bits -- n/8 bytes total, the only
    trace-length-proportional state any streamed task needs.
    """
    from repro.predictors.pattern import MAX_PATTERN_LENGTH

    if max_k is None:
        max_k = MAX_PATTERN_LENGTH
    # Per-static-branch accumulator: a list of bit-packed segments plus
    # an under-8-bit tail awaiting its byte.  Packing incrementally (not
    # per-chunk-if-aligned) keeps the aux state at n/8 bytes total --
    # storing raw bool copies would put the whole outcome column back in
    # memory and defeat the streaming budget.
    sequences: Dict[int, List[np.ndarray]] = {}
    tails: Dict[int, np.ndarray] = {}
    lengths: Dict[int, int] = {}
    empty = np.zeros(0, dtype=bool)
    total = 0
    for chunk in chunks:
        total += len(chunk)
        for pc, outcomes in chunk.outcomes_by_pc().items():
            pending = np.concatenate([tails.get(pc, empty), outcomes])
            packable = len(pending) - len(pending) % 8
            if packable:
                sequences.setdefault(pc, []).append(
                    np.packbits(pending[:packable], bitorder="little")
                )
            tails[pc] = pending[packable:].copy()
            lengths[pc] = lengths.get(pc, 0) + len(outcomes)
    correct = 0
    for pc, n in lengths.items():
        outcomes = np.concatenate(
            [
                np.unpackbits(part, bitorder="little").astype(bool)
                for part in sequences.get(pc, [])
            ]
            + [tails[pc]]
        )[:n]
        best_count = -1
        for k in range(1, max_k + 1):
            count = int(np.count_nonzero(outcomes[:k]))
            if n > k:
                count += int(np.count_nonzero(outcomes[k:] == outcomes[:-k]))
            if count > best_count:
                best_count = count
        correct += best_count
    return correct, total


#: Tasks :func:`stream_report` can fold in bounded memory, in report
#: order: the causal kernels plus the two whole-run static baselines.
STREAMABLE_TASKS: Tuple[str, ...] = CHUNKABLE_TASKS + (
    "ideal_static",
    "fixed_best",
)


def stream_report(
    stream: TraceStream,
    config: LabConfig,
    tasks: Tuple[str, ...] = STREAMABLE_TASKS,
) -> Dict[str, Dict[str, float]]:
    """Per-task accuracy over a stream, O(window) resident memory.

    Returns ``{task: {"correct", "total", "accuracy"}}``.  Counts are
    identical to a whole-trace run (the kernels are carried-state
    exact; the static folds are count-exact by construction).
    """
    report: Dict[str, Dict[str, float]] = {}
    for task in tasks:
        if task in CHUNKABLE_TASKS:
            correct, total = fold_correct_count(
                task_predictor(config, task), stream.chunks()
            )
        elif task == "ideal_static":
            correct, total = ideal_static_count(stream.chunks())
        elif task == "fixed_best":
            correct, total = fixed_best_count(stream.chunks())
        else:
            raise ValueError(
                f"task {task!r} is not streamable; choose from "
                f"{STREAMABLE_TASKS}"
            )
        report[task] = {
            "correct": correct,
            "total": total,
            "accuracy": (correct / total) if total else 0.0,
        }
    return report
