"""Parallel simulation scheduler with fault-tolerant supervision.

A full report simulates seven predictors plus the best-of-32 fixed
pattern sweep and the tagged-correlation collection over eight benchmark
traces -- 72 independent ``(benchmark, task)`` jobs with no shared
state.  This module fans them over a :class:`~concurrent.futures.\
ProcessPoolExecutor` and folds the results back into each
:class:`~repro.analysis.runner.Lab`'s memo dict, so downstream
experiments see exactly the state a serial run would have produced.

Determinism: every job is a pure function of ``(benchmark name, length,
run seed, config, task)``; workers regenerate the trace from those
inputs (a per-process LRU plus the shared disk cache make this cheap)
and the parent verifies the returned trace digest before folding, so
completion order and worker scheduling cannot change any result.

Streaming: with ``chunk_branches`` set, the causal tasks
(:data:`~repro.analysis.streamed.CHUNKABLE_TASKS`) run as *chunk
lanes* instead of whole-trace jobs -- each benchmark's columns are
published once into :mod:`multiprocessing.shared_memory` and workers
simulate fixed windows, resuming from the carried predictor state the
previous chunk returned.  Nothing trace-length-proportional is ever
pickled into a submission, and the folded bitmaps are bit-identical to
the unchunked run (the PC011 contract check and the split-point
property tests enforce it).

Resilience: the parent runs a supervisor loop rather than a bare
``as_completed``.  A failing attempt (worker exception, injected
crash, lost worker, wall-clock timeout) is retried with deterministic
capped backoff up to the :class:`~repro.resilience.RetryPolicy`'s
attempt budget; a timed-out or broken pool is killed and rebuilt, with
innocent in-flight jobs resubmitted at their *current* attempt number.
A task that exhausts its budget becomes a structured
:class:`~repro.resilience.TaskFailure` -- the run continues and the
lab computes that task lazily in-process if an experiment needs it.
``KeyboardInterrupt``/``SIGTERM`` tear the pool down cleanly (cancel
pending futures, terminate workers) instead of leaking it.  The
:class:`~repro.resilience.FaultInjector` hooks the same machinery so
crashes, hangs and cache corruption are reproducible in tests: the
same fault spec yields the same attempt sequence -- and identical
folded results and resilience counters -- for ``--jobs 1`` and
``--jobs 4``.

Observability crosses the process boundary the same way the results do:
each worker resets its per-process :data:`repro.obs.METRICS` registry
and :data:`repro.obs.TRACER` per job, and ships the metric delta plus
its span events back alongside the result; the parent folds both in the
same deterministic (sorted-benchmark, task-order) sequence it folds
bitmaps, so aggregated counters are independent of completion order and
``sum(worker deltas) == single-process counters`` for every work-unit
counter.  (A crashed attempt's delta dies with it; only successful
attempts are folded, identically in serial and parallel runs.)

Worker count comes from ``--jobs``, the :data:`ENV_JOBS` environment
variable, or ``os.cpu_count()``; ``jobs <= 1`` short-circuits to the
plain in-process path with no executor, no pickling and no subprocesses
-- but the same retry/fault semantics.
"""

from __future__ import annotations

import os
import pickle
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.cache import ResultCache, result_key
from repro.analysis.config import LabConfig
from repro.analysis.runner import Lab
from repro.analysis.streamed import CHUNKABLE_TASKS, chunked_bitmap
from repro.correlation.tagging import collect_correlation_data
from repro.obs.metrics import METRICS
from repro.obs.tracing import TRACER, span
from repro.predictors.pattern import best_fixed_length_correct
from repro.resilience.faults import (
    HANG_SECONDS,
    FaultInjector,
    FaultSpecError,
    InjectedCrash,
)
from repro.resilience.retry import RetryPolicy, TaskFailure, TaskTimeout
from repro.trace.stream import TraceStream, chunk_spans, normalize_chunk_branches
from repro.trace.trace import Trace

#: Environment variable overriding the worker count.
ENV_JOBS = "REPRO_JOBS"

#: Pseudo-task name for the tagged-correlation collection.
CORRELATION_TASK = "correlation"

#: Supervisor poll interval while futures are in flight (seconds).
_TICK = 0.05

#: Tasks a full report needs, in deterministic fold order.
DEFAULT_TASKS: Tuple[str, ...] = (
    "gshare",
    "if_gshare",
    "pas",
    "if_pas",
    "loop",
    "block",
    "ideal_static",
    "fixed_best",
    CORRELATION_TASK,
)

#: Map task name -> LabConfig factory attribute (mirrors Lab._factories).
_FACTORY_ATTRS: Dict[str, str] = {
    "gshare": "gshare",
    "if_gshare": "if_gshare",
    "pas": "pas",
    "if_pas": "if_pas",
    "loop": "loop",
    "block": "block_pattern",
    "ideal_static": "ideal_static",
}


def default_jobs() -> int:
    """Worker count: ``$REPRO_JOBS`` if set and valid, else CPU count."""
    override = os.environ.get(ENV_JOBS)
    if override:
        try:
            return max(1, int(override))
        except ValueError:
            pass
    return os.cpu_count() or 1


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``--jobs`` value (None -> environment/CPU default)."""
    if jobs is None:
        return default_jobs()
    return max(1, int(jobs))


def compute_task(trace: Trace, config: LabConfig, task: str):
    """Compute one task's result on a trace (the single source of truth).

    Used by the serial priming path in-process and by
    :func:`_run_task` inside workers, so both paths produce bit-identical
    results and identical work-unit metrics (``sim.simulations`` /
    ``sim.correlation_collections``).
    """
    if task == CORRELATION_TASK:
        METRICS.inc("sim.correlation_collections")
        with span(
            "collect_correlation", length=len(trace)
        ), METRICS.timer("sim.seconds"):
            return collect_correlation_data(
                trace, window=config.collection_window
            )
    METRICS.inc("sim.simulations")
    with span(
        "simulate", predictor=task, length=len(trace)
    ), METRICS.timer("sim.seconds"):
        if task == "fixed_best":
            return best_fixed_length_correct(trace)
        factory = getattr(config, _FACTORY_ATTRS[task])
        return factory().simulate(trace)


def _corrupt_result_entry(
    cache: ResultCache, digest: str, task: str, config: LabConfig
) -> None:
    """Truncate the cache entry a task just wrote (injected 'corrupt').

    The in-memory result is untouched -- the fault surfaces only on a
    later run's cache load, which the quarantine path must turn into a
    clean recompute.
    """
    if task == CORRELATION_TASK:
        key = cache.correlation_key(digest, config.collection_window)
        kind = "corr"
    else:
        key = cache.bitmap_key(digest, result_key(task, config))
        kind = "bitmap"
    path = cache.entry_path(kind, key)
    try:
        with open(path, "r+b") as fh:
            fh.truncate(8)
    except OSError:
        pass


def _run_task(job: tuple):
    """Execute one ``(benchmark, task)`` attempt in a worker process.

    Module-level so it pickles; regenerates the trace from the job spec
    (per-process LRU in ``load_benchmark`` plus the shared disk cache
    keep this a one-time cost per worker per benchmark).  Returns the
    job's metric delta and span events alongside the result so the
    parent can fold telemetry deterministically.

    ``fault_kinds`` is the pre-matched tuple of injected faults for
    exactly this attempt (the parent does the matching and counting, so
    an attempt that dies cannot lose the accounting).
    """
    (
        name, length, run_seed, config, task, cache_root, _window,
        source, fault_kinds,
    ) = job

    if "crash" in fault_kinds:
        raise InjectedCrash(f"injected crash: {name}/{task}")
    if "hang" in fault_kinds:
        time.sleep(HANG_SECONDS)

    METRICS.reset()
    TRACER.reset()
    start = time.perf_counter()
    with span("job", benchmark=name, task=task):
        cache = ResultCache(cache_root) if cache_root is not None else None
        trace = _worker_trace(name, length, run_seed, source, cache)
        digest = trace.digest()
        result = compute_task(trace, config, task)
        if cache is not None:
            if task == CORRELATION_TASK:
                cache.store_correlation(digest, result)
            else:
                cache.store_bitmap(digest, result_key(task, config), result)
            if "corrupt" in fault_kinds:
                _corrupt_result_entry(cache, digest, task, config)
    duration = time.perf_counter() - start
    return (
        name, task, digest, result,
        METRICS.snapshot(), TRACER.chrome_events(), duration,
    )


def _worker_trace(
    name: str,
    length: int,
    run_seed: int,
    source: Optional[tuple],
    cache: Optional[ResultCache],
) -> Trace:
    """Materialise one job's trace from its source descriptor.

    ``source`` is the picklable per-benchmark descriptor
    :func:`prime_labs` ships: ``None`` (the legacy suite trace),
    ``("synthetic", mix_items)`` (a mix-scaled suite trace, cached under
    its mix-signature variant key), or ``("imported", path, format,
    digest)`` (a foreign file, digest-verified on load).
    """
    if source is not None and source[0] == "imported":
        from repro.trace.ingest import load_imported_trace

        _, path, fmt, expected = source
        return load_imported_trace(
            path, format=fmt, expected_digest=expected
        )
    from repro.workloads.suite import load_benchmark, mix_items_signature

    mix_items = source[1] if source is not None else ()
    variant = mix_items_signature(mix_items)
    trace = (
        cache.load_trace(name, length, run_seed, variant=variant)
        if cache
        else None
    )
    if trace is None:
        trace = load_benchmark(name, length, run_seed, mix=dict(mix_items))
        if cache is not None:
            cache.store_trace(name, length, run_seed, trace, variant=variant)
    return trace


def _run_chunk(job: tuple):
    """Execute one chunk attempt of a chunked lane in a worker process.

    The trace window comes from the parent's shared-memory segment --
    no column pickling, no regeneration -- and the predictor resumes
    from the carried state the lane's previous chunk returned (None for
    the first chunk).  Returns the window's correctness bitmap plus the
    predictor's new pickled state, so the parent can chain the next
    chunk on any worker.
    """
    (shm_name, length, start, stop, config, task, state_blob) = job
    from repro.analysis.shm import attach_window
    from repro.analysis.streamed import task_predictor

    METRICS.reset()
    TRACER.reset()
    begin = time.perf_counter()
    window, handle = attach_window(shm_name, length, start, stop)
    try:
        with span("chunk", task=task, start=start, stop=stop):
            predictor = (
                pickle.loads(state_blob)
                if state_blob is not None
                else task_predictor(config, task)
            )
            METRICS.inc("sim.chunk_simulations")
            bitmap = np.asarray(predictor.simulate(window), dtype=bool)
            state = pickle.dumps(predictor, protocol=pickle.HIGHEST_PROTOCOL)
    finally:
        del window
        try:
            handle.close()
        except BufferError:
            pass
    return (
        bitmap, state,
        METRICS.snapshot(), TRACER.chrome_events(),
        time.perf_counter() - begin,
    )


def _count_injected(kinds: Sequence[str]) -> None:
    """Parent-side accounting of faults scheduled for an attempt."""
    for kind in kinds:
        METRICS.inc(f"resilience.faults.{kind}")
        METRICS.inc("resilience.faults_injected")


def _shutdown_pool(pool: ProcessPoolExecutor, kill: bool = False) -> None:
    """Shut a pool down without waiting on stuck workers.

    ``kill`` additionally terminates the worker processes -- the only
    way to reclaim a hung worker.  Reaches into the executor's process
    table (CPython 3.9-3.13 keep it at ``_processes``); absent that
    attribute the shutdown still cancels everything queued.
    """
    if kill:
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.terminate()
            except Exception:
                pass
    pool.shutdown(wait=False, cancel_futures=True)


class WorkerPool:
    """A reusable worker pool with an explicit lifecycle.

    One priming pass historically meant one ``ProcessPoolExecutor``:
    built at the start, torn down at the end, its warm workers (and
    their per-process trace LRUs) discarded with it.  A long-lived
    engine session -- a sweep, or the :mod:`repro.serve` daemon
    fielding many runs -- passes a ``WorkerPool`` into
    :func:`prime_labs` instead, so every run schedules onto the *same*
    warm workers and cold-start is paid once per session, not once per
    request.

    The pool is lazy (no subprocesses until the first submit), rebuilds
    itself when the supervisor kills a broken or hung executor, and
    drains on demand: :meth:`drain` is what a SIGTERM-initiated
    graceful shutdown calls -- cancel everything queued, reap the
    workers, leave the journal/cache state to the owning session.
    """

    def __init__(self, jobs: int) -> None:
        self.jobs = max(1, int(jobs))
        self._pool: Optional[ProcessPoolExecutor] = None

    def handle(self) -> ProcessPoolExecutor:
        """The live executor, created on first use."""
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    def rebuild(self) -> None:
        """Kill the current executor; the next :meth:`handle` starts fresh."""
        if self._pool is not None:
            _shutdown_pool(self._pool, kill=True)
            self._pool = None

    def drain(self, kill: bool = False) -> None:
        """Shut the pool down (idempotent).

        ``kill=False`` is the graceful path: nothing new is accepted
        and queued futures are cancelled, but running workers finish
        their current attempt.  ``kill=True`` terminates them.
        """
        if self._pool is not None:
            _shutdown_pool(self._pool, kill=kill)
            self._pool = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.drain(kill=exc_info[0] is not None)


class _Supervisor:
    """Drives one parallel priming pass: submit, retry, kill, rebuild."""

    def __init__(
        self,
        jobs: int,
        specs: Dict[Tuple[str, str], tuple],
        order: Sequence[Tuple[str, str]],
        policy: RetryPolicy,
        injector: Optional[FaultInjector],
        pool: Optional[WorkerPool] = None,
    ) -> None:
        self.jobs = jobs
        self.specs = specs
        self.policy = policy
        self.injector = injector
        self.ready = deque((key, 1) for key in order)
        self.waiting: List[Tuple[float, int, Tuple[str, str], int]] = []
        self.active: Dict[object, Tuple[Tuple[str, str], int, Optional[float]]] = {}
        self.results: Dict[Tuple[str, str], tuple] = {}
        self.failures: List[TaskFailure] = []
        self._seq = 0
        # A shared pool outlives this pass (the owning session drains
        # it); a private one is built on demand and reaped at the end.
        self._shared = pool is not None
        self._pool = pool if pool is not None else WorkerPool(jobs)

    # -- pool lifecycle ----------------------------------------------------

    def _pool_handle(self) -> ProcessPoolExecutor:
        return self._pool.handle()

    def _rebuild_pool(self) -> None:
        self._pool.rebuild()
        METRICS.inc("parallel.pool_rebuilds")

    def shutdown(self, kill: bool = False) -> None:
        # A clean end of pass leaves a shared pool warm for the next
        # run; an interrupt (kill=True) reaps it either way -- the pool
        # recreates its workers lazily if the session continues.
        if self._shared and not kill:
            return
        self._pool.drain(kill=kill)

    # -- scheduling --------------------------------------------------------

    def _spec_with_faults(self, key: Tuple[str, str], attempt: int) -> tuple:
        name, task = key
        kinds: Tuple[str, ...] = ()
        if self.injector is not None:
            kinds = self.injector.kinds(name, task, attempt)
            _count_injected(kinds)
        return self.specs[key] + (kinds,)

    def _submit(self, key: Tuple[str, str], attempt: int) -> None:
        spec = self._spec_with_faults(key, attempt)
        try:
            future = self._pool_handle().submit(_run_task, spec)
        except BrokenProcessPool:
            # The pool broke between loops; rebuild once and resubmit.
            self._rebuild_pool()
            future = self._pool_handle().submit(_run_task, spec)
        deadline = (
            time.monotonic() + self.policy.timeout
            if self.policy.timeout is not None
            else None
        )
        self.active[future] = (key, attempt, deadline)

    def _defer(self, key: Tuple[str, str], attempt: int) -> None:
        """Queue the next attempt after its deterministic backoff."""
        backoff = self.policy.backoff(attempt)
        METRICS.inc("resilience.retries")
        METRICS.add_time("resilience.backoff_seconds", backoff)
        self._seq += 1
        self.waiting.append(
            (time.monotonic() + backoff, self._seq, key, attempt + 1)
        )

    def _on_attempt_failure(
        self, key: Tuple[str, str], attempt: int, kind: str, message: str
    ) -> None:
        if kind == "timeout":
            METRICS.inc("resilience.timeouts")
        if attempt >= self.policy.max_attempts:
            name, task = key
            METRICS.inc("resilience.task_failures")
            self.failures.append(
                TaskFailure(
                    benchmark=name,
                    task=task,
                    attempts=attempt,
                    kind=kind,
                    message=message,
                )
            )
        else:
            self._defer(key, attempt)

    # -- main loop ---------------------------------------------------------

    def run(self) -> None:
        try:
            while self.ready or self.waiting or self.active:
                self._promote_waiting()
                while self.ready and len(self.active) < self.jobs:
                    key, attempt = self.ready.popleft()
                    self._submit(key, attempt)
                if not self.active:
                    # Everything left is backing off; sleep to the next
                    # ready time instead of spinning.
                    if self.waiting:
                        next_at = min(entry[0] for entry in self.waiting)
                        time.sleep(max(0.0, next_at - time.monotonic()))
                    continue
                done, _ = wait(
                    list(self.active), timeout=_TICK,
                    return_when=FIRST_COMPLETED,
                )
                if not self._collect(done):
                    continue  # pool broke; state already rescheduled
                self._expire_deadlines()
        except BaseException:
            # Interrupt/SIGTERM/unexpected error: reap workers, cancel
            # queued futures, and let the caller decide what to keep.
            self.shutdown(kill=True)
            raise
        else:
            self.shutdown()

    def _promote_waiting(self) -> None:
        if not self.waiting:
            return
        now = time.monotonic()
        self.waiting.sort()
        while self.waiting and self.waiting[0][0] <= now:
            _, _, key, attempt = self.waiting.pop(0)
            self.ready.append((key, attempt))

    def _collect(self, done) -> bool:
        """Harvest finished futures; False if the pool broke mid-batch."""
        for future in done:
            key, attempt, _ = self.active.pop(future)
            try:
                payload = future.result()
            except BrokenProcessPool as error:
                self._on_pool_broken(key, attempt, error)
                return False
            except Exception as error:
                self._on_attempt_failure(
                    key, attempt, "error", f"{type(error).__name__}: {error}"
                )
            else:
                self.results[key] = payload
        return True

    def _on_pool_broken(self, key, attempt, error) -> None:
        """A worker died hard; every in-flight job went down with it.

        The culprit is unknowable from the parent, so every in-flight
        attempt (the reporting future included) is charged one attempt
        -- each job still gets its full retry budget, and a persistent
        hard-crasher cannot rebuild the pool forever.
        """
        victims = [(key, attempt)]
        for future, (other_key, other_attempt, _) in self.active.items():
            future.cancel()
            victims.append((other_key, other_attempt))
        self.active.clear()
        self._rebuild_pool()
        for victim_key, victim_attempt in victims:
            self._on_attempt_failure(
                victim_key,
                victim_attempt,
                "worker-lost",
                f"worker pool broke: {error}",
            )

    def _expire_deadlines(self) -> None:
        now = time.monotonic()
        expired = [
            (future, entry)
            for future, entry in self.active.items()
            if entry[2] is not None and now >= entry[2]
        ]
        if not expired:
            return
        # A hung worker can only be reclaimed by killing the pool, which
        # takes every in-flight job with it: timed-out attempts are
        # charged and retried, innocents resubmitted at the same attempt.
        expired_futures = {future for future, _ in expired}
        innocents = [
            (key, attempt)
            for future, (key, attempt, _) in self.active.items()
            if future not in expired_futures
        ]
        self.active.clear()
        self._rebuild_pool()
        for _, (key, attempt, _) in expired:
            self._on_attempt_failure(
                key, attempt, "timeout",
                f"attempt exceeded {self.policy.timeout:.3f}s wall clock",
            )
        for key, attempt in reversed(innocents):
            self.ready.appendleft((key, attempt))


class _ChunkScheduler:
    """Chunk lanes over the pool: sequential per lane, parallel across.

    A *lane* is one ``(benchmark, task)`` pair whose trace is folded
    window by window: chunk ``k`` resumes from the predictor state
    chunk ``k-1`` returned, so a lane is inherently sequential, but the
    48 lanes of a full chunked report keep the pool busy.  The carried
    state lives in the parent between chunks, which is what makes a
    chunk attempt retryable -- a crashed worker costs one window, not
    the lane.  A lane that exhausts one chunk's attempt budget becomes
    a :class:`TaskFailure` and the lab computes that task lazily.
    """

    def __init__(
        self,
        jobs: int,
        lanes: Dict[Tuple[str, str], dict],
        order: Sequence[Tuple[str, str]],
        policy: RetryPolicy,
        pool: Optional[WorkerPool] = None,
    ) -> None:
        self.jobs = jobs
        self.lanes = lanes
        self.policy = policy
        self.progress = {
            key: {
                "next": 0, "state": None, "parts": [],
                "deltas": [], "events": [], "seconds": 0.0,
            }
            for key in order
        }
        self.ready = deque((key, 1) for key in order)
        self.waiting: List[Tuple[float, int, Tuple[str, str], int]] = []
        self.active: Dict[object, Tuple[Tuple[str, str], int]] = {}
        self.results: Dict[Tuple[str, str], tuple] = {}
        self.failures: List[TaskFailure] = []
        self._seq = 0
        self._shared = pool is not None
        self._pool = pool if pool is not None else WorkerPool(jobs)

    def _rebuild_pool(self) -> None:
        self._pool.rebuild()
        METRICS.inc("parallel.pool_rebuilds")

    def shutdown(self, kill: bool = False) -> None:
        if self._shared and not kill:
            return
        self._pool.drain(kill=kill)

    def _submit(self, key: Tuple[str, str], attempt: int) -> None:
        lane = self.lanes[key]
        prog = self.progress[key]
        start, stop = lane["spans"][prog["next"]]
        spec = (
            lane["shm"], lane["length"], start, stop,
            lane["config"], key[1], prog["state"],
        )
        try:
            future = self._pool.handle().submit(_run_chunk, spec)
        except BrokenProcessPool:
            self._rebuild_pool()
            future = self._pool.handle().submit(_run_chunk, spec)
        self.active[future] = (key, attempt)

    def _defer(self, key: Tuple[str, str], attempt: int) -> None:
        backoff = self.policy.backoff(attempt)
        METRICS.inc("resilience.retries")
        METRICS.add_time("resilience.backoff_seconds", backoff)
        self._seq += 1
        self.waiting.append(
            (time.monotonic() + backoff, self._seq, key, attempt + 1)
        )

    def _on_attempt_failure(
        self, key: Tuple[str, str], attempt: int, kind: str, message: str
    ) -> None:
        if attempt >= self.policy.max_attempts:
            name, task = key
            METRICS.inc("resilience.task_failures")
            self.failures.append(
                TaskFailure(
                    benchmark=name,
                    task=task,
                    attempts=attempt,
                    kind=kind,
                    message=message,
                )
            )
        else:
            self._defer(key, attempt)

    def _advance(self, key: Tuple[str, str], payload: tuple) -> None:
        bitmap, state, delta, events, seconds = payload
        lane = self.lanes[key]
        prog = self.progress[key]
        prog["parts"].append(bitmap)
        prog["deltas"].append(delta)
        prog["events"].extend(events)
        prog["seconds"] += seconds
        prog["state"] = state
        prog["next"] += 1
        if prog["next"] == len(lane["spans"]):
            self.results[key] = (
                np.concatenate(prog["parts"]),
                prog["deltas"], prog["events"], prog["seconds"],
            )
        else:
            self.ready.append((key, 1))

    def run(self) -> None:
        try:
            while self.ready or self.waiting or self.active:
                self._promote_waiting()
                while self.ready and len(self.active) < self.jobs:
                    key, attempt = self.ready.popleft()
                    self._submit(key, attempt)
                if not self.active:
                    if self.waiting:
                        next_at = min(entry[0] for entry in self.waiting)
                        time.sleep(max(0.0, next_at - time.monotonic()))
                    continue
                done, _ = wait(
                    list(self.active), timeout=_TICK,
                    return_when=FIRST_COMPLETED,
                )
                self._collect(done)
        except BaseException:
            self.shutdown(kill=True)
            raise
        else:
            self.shutdown()

    def _promote_waiting(self) -> None:
        if not self.waiting:
            return
        now = time.monotonic()
        self.waiting.sort()
        while self.waiting and self.waiting[0][0] <= now:
            _, _, key, attempt = self.waiting.pop(0)
            self.ready.append((key, attempt))

    def _collect(self, done) -> None:
        for future in done:
            key, attempt = self.active.pop(future)
            try:
                payload = future.result()
            except BrokenProcessPool as error:
                self._on_pool_broken(key, attempt, error)
                return
            except Exception as error:
                self._on_attempt_failure(
                    key, attempt, "error", f"{type(error).__name__}: {error}"
                )
            else:
                self._advance(key, payload)

    def _on_pool_broken(self, key, attempt, error) -> None:
        # Every in-flight chunk died with the pool; each lane's carried
        # state is parent-side, so each is charged one attempt at its
        # *current* chunk and resubmitted from exactly there.
        victims = [(key, attempt)]
        for future, (other_key, other_attempt) in self.active.items():
            future.cancel()
            victims.append((other_key, other_attempt))
        self.active.clear()
        self._rebuild_pool()
        for victim_key, victim_attempt in victims:
            self._on_attempt_failure(
                victim_key, victim_attempt, "worker-lost",
                f"worker pool broke: {error}",
            )


def _prime_chunked(
    labs: Dict[str, Lab],
    chunked: Sequence[Tuple[str, str]],
    chunk_size: int,
    jobs: int,
    policy: RetryPolicy,
    pool: Optional[WorkerPool],
) -> Tuple[int, List[TaskFailure]]:
    """Fold the chunkable lanes; returns ``(executed, failures)``.

    ``jobs <= 1`` folds in-process over zero-copy windows; otherwise
    each benchmark's columns are published to shared memory once and
    the lanes run over the pool.  Either way the folded bitmaps are
    bit-identical to the unchunked path, and the parent writes them
    through each lab (and its cache) in deterministic lane order.
    """
    task_failures: List[TaskFailure] = []
    executed = 0
    if jobs <= 1:
        for name, task in chunked:
            lab = labs[name]
            stream = TraceStream.from_trace(lab.trace, chunk_size)
            try:
                bitmap = chunked_bitmap(stream, lab.config, task)
            except Exception as error:
                METRICS.inc("resilience.task_failures")
                task_failures.append(
                    TaskFailure(
                        benchmark=name, task=task, attempts=1, kind="error",
                        message=f"{type(error).__name__}: {error}",
                    )
                )
                continue
            lab.store_correct(task, bitmap)
            executed += 1
        return executed, task_failures

    from repro.analysis.shm import SharedTrace

    shared: Dict[str, SharedTrace] = {}
    try:
        for name in sorted({name for name, _ in chunked}):
            shared[name] = SharedTrace.create(labs[name].trace)
        lanes = {
            (name, task): {
                "shm": shared[name].name,
                "length": len(labs[name].trace),
                "spans": chunk_spans(len(labs[name].trace), chunk_size),
                "config": labs[name].config,
            }
            for name, task in chunked
        }
        scheduler = _ChunkScheduler(jobs, lanes, chunked, policy, pool)
        scheduler.run()
    finally:
        for segment in shared.values():
            segment.unlink()

    # Deterministic fold: lane order, chunk order within each lane.
    for key in chunked:
        if key not in scheduler.results:
            continue
        bitmap, deltas, events, seconds = scheduler.results[key]
        METRICS.inc("sim.chunked_simulations")
        for delta in deltas:
            METRICS.merge(delta)
        METRICS.add_time("parallel.job_seconds", seconds)
        TRACER.add_events(events)
        name, task = key
        labs[name].store_correct(task, bitmap)
        executed += 1
    return executed, scheduler.failures


def prime_labs(
    labs: Dict[str, Lab],
    run_seed: int = 12345,
    *,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    tasks: Sequence[str] = DEFAULT_TASKS,
    policy: Optional[RetryPolicy] = None,
    injector: Optional[FaultInjector] = None,
    failures: Optional[list] = None,
    pool: Optional[WorkerPool] = None,
    chunk_branches: Optional[int] = None,
    sources: Optional[Dict[str, tuple]] = None,
) -> int:
    """Populate every lab's memos for ``tasks``, in parallel.

    Cached results are folded in directly; only misses are scheduled.
    After this returns, ``lab.correct(task)`` / ``lab.correlation_data()``
    are pure memo lookups for every requested task.

    Args:
        labs: Benchmark name -> Lab, as built by ``build_labs``.  The
            benchmark name must regenerate the lab's trace (standard
            suite labs; ad-hoc labs should skip priming).
        run_seed: The seed the labs' traces were generated with.
        jobs: Worker processes (None -> :func:`default_jobs`).
        cache: Shared result cache; workers write through to it.
        tasks: Task names to prime (subset of :data:`DEFAULT_TASKS`).
        policy: Retry/timeout policy (None -> environment defaults via
            :meth:`RetryPolicy.resolve`).
        injector: Deterministic fault injector (None -> no faults; the
            :data:`REPRO_FAULT_SPEC` environment variable is resolved
            by the API layer, not here).
        failures: If given, a task that exhausts its attempt budget is
            appended here as a structured dict and the pass continues;
            if None, exhausted tasks are simply left unprimed (the lab
            computes them lazily on demand).
        pool: A session-owned :class:`WorkerPool` to schedule onto.
            When given it overrides ``jobs``, stays warm after the pass
            (the owner drains it), and is shared with every other run
            of the same session.
        chunk_branches: If set, fold every chunkable task
            (:data:`~repro.analysis.streamed.CHUNKABLE_TASKS`) over
            fixed windows of this many branches -- in-process for
            ``jobs <= 1``, else as shared-memory chunk lanes on the
            pool -- instead of whole-trace jobs.  Results are
            bit-identical either way.  Ignored for traces no longer
            than one chunk, and (because injected faults target whole
            task attempts) whenever ``injector`` is set.
        sources: Per-benchmark trace-source descriptors workers use to
            rematerialise job traces (see :func:`_worker_trace`); None
            (or an absent name) means the legacy suite trace.  The
            chunked path ignores this -- its windows ship from the
            parent's columns over shared memory.

    Returns:
        The number of jobs that executed successfully (0 means
        everything was cached).

    Raises:
        FaultSpecError: If the fault spec injects hangs but the policy
            has no timeout to detect them with.
    """
    jobs = pool.jobs if pool is not None else resolve_jobs(jobs)
    if policy is None:
        policy = RetryPolicy.resolve()
    if injector is not None and injector.wants_timeout() and policy.timeout is None:
        raise FaultSpecError(
            "fault spec injects 'hang' faults but no task timeout is set; "
            "pass --task-timeout (or REPRO_TASK_TIMEOUT)"
        )
    METRICS.gauge("parallel.workers", jobs)
    pending = []
    for name in sorted(labs):
        lab = labs[name]
        if cache is not None and lab.cache is None:
            lab.cache = cache
        for task in tasks:
            if lab.is_primed(task) or _fold_cached(lab, task):
                continue
            pending.append((name, task))

    if not pending:
        return 0

    chunked: List[Tuple[str, str]] = []
    chunk_size = 0
    if chunk_branches is not None and injector is None:
        # Injected faults target whole (benchmark, task) attempts; the
        # chunked path would change that accounting, so an injector
        # forces every task through the unchunked scheduler.
        chunk_size = normalize_chunk_branches(chunk_branches)
        chunked = [
            (name, task)
            for name, task in pending
            if task in CHUNKABLE_TASKS and len(labs[name].trace) > chunk_size
        ]
        if chunked:
            chunked_keys = set(chunked)
            pending = [key for key in pending if key not in chunked_keys]

    executed = 0
    all_failures: List[TaskFailure] = []

    if chunked:
        with span(
            "prime_chunked", jobs=jobs, lanes=len(chunked),
            chunk_branches=chunk_size,
        ):
            chunk_executed, chunk_failures = _prime_chunked(
                labs, chunked, chunk_size, jobs, policy, pool
            )
        executed += chunk_executed
        all_failures.extend(chunk_failures)

    if pending and jobs <= 1:
        with span("prime_labs", jobs=1, pending=len(pending)):
            serial_executed, task_failures = _prime_serial_all(
                labs, pending, policy, injector
            )
        executed += serial_executed
        all_failures.extend(task_failures)
    elif pending:
        cache_root = str(cache.root) if cache is not None else None
        job_specs = {
            (name, task): (
                name,
                len(labs[name].trace),
                run_seed,
                labs[name].config,
                task,
                cache_root,
                labs[name].config.collection_window,
                sources.get(name) if sources is not None else None,
            )
            for name, task in pending
        }
        supervisor = _Supervisor(
            jobs, job_specs, pending, policy, injector, pool=pool
        )
        with span("prime_labs", jobs=jobs, pending=len(pending)):
            supervisor.run()

        # Fold in deterministic (sorted-name, task-order) order,
        # verifying the worker simulated the same trace the lab holds.
        # Metric deltas and span events fold in the same order, so
        # aggregate telemetry is independent of worker scheduling.
        for name, task in pending:
            if (name, task) not in supervisor.results:
                continue  # failed after retries; recorded below
            _, _, digest, result, delta, events, duration = supervisor.results[
                (name, task)
            ]
            METRICS.merge(delta)
            METRICS.add_time("parallel.job_seconds", duration)
            TRACER.add_events(events)
            lab = labs[name]
            if digest != lab.trace.digest():
                # Worker regenerated a different trace (ad-hoc lab):
                # discard and let the lab compute lazily.
                continue
            # Workers already wrote the shared cache; skip the second
            # write.
            write_through = cache is None
            if task == CORRELATION_TASK:
                lab.store_correlation(result, write_through=write_through)
            else:
                lab.store_correct(task, result, write_through=write_through)
            executed += 1
        all_failures.extend(supervisor.failures)
    METRICS.inc("parallel.jobs_executed", executed)
    _report_failures(all_failures, failures)
    return executed


def _report_failures(
    task_failures: List[TaskFailure], sink: Optional[list]
) -> None:
    """Deliver structured failures in a schedule-independent order."""
    if sink is None:
        return
    for failure in sorted(task_failures, key=lambda f: (f.benchmark, f.task)):
        sink.append(failure.to_dict())


def _prime_serial_all(
    labs: Dict[str, Lab],
    pending: Sequence[Tuple[str, str]],
    policy: RetryPolicy,
    injector: Optional[FaultInjector],
) -> Tuple[int, List[TaskFailure]]:
    """The in-process path: same retry/fault semantics, no executor.

    Injected hangs cannot be preempted in-process, so they fail the
    attempt as a timeout immediately -- keeping the attempt sequence
    (and every resilience counter) identical to a parallel run under
    the same fault spec.
    """
    executed = 0
    task_failures: List[TaskFailure] = []
    for name, task in pending:
        lab = labs[name]
        attempt = 1
        while True:
            kinds: Tuple[str, ...] = ()
            if injector is not None:
                kinds = injector.kinds(name, task, attempt)
                _count_injected(kinds)
            try:
                if "crash" in kinds:
                    raise InjectedCrash(f"injected crash: {name}/{task}")
                if "hang" in kinds:
                    raise TaskTimeout(
                        f"injected hang: {name}/{task} (in-process)"
                    )
                result = compute_task(lab.trace, lab.config, task)
            except Exception as error:
                kind = "timeout" if isinstance(error, TaskTimeout) else "error"
                if kind == "timeout":
                    METRICS.inc("resilience.timeouts")
                if attempt >= policy.max_attempts:
                    METRICS.inc("resilience.task_failures")
                    task_failures.append(
                        TaskFailure(
                            benchmark=name,
                            task=task,
                            attempts=attempt,
                            kind=kind,
                            message=f"{type(error).__name__}: {error}",
                        )
                    )
                    break
                backoff = policy.backoff(attempt)
                METRICS.inc("resilience.retries")
                METRICS.add_time("resilience.backoff_seconds", backoff)
                time.sleep(backoff)
                attempt += 1
            else:
                if task == CORRELATION_TASK:
                    lab.store_correlation(result)
                else:
                    lab.store_correct(task, result)
                if "corrupt" in kinds and lab.cache is not None:
                    _corrupt_result_entry(
                        lab.cache, lab.trace.digest(), task, lab.config
                    )
                executed += 1
                break
    return executed, task_failures


def _fold_cached(lab: Lab, task: str) -> bool:
    """Fold a disk-cached result into the lab's memo; True on a hit."""
    if lab.cache is None:
        return False
    if task == CORRELATION_TASK:
        data = lab.cache.load_correlation(
            lab.trace.digest(), lab.config.collection_window
        )
        if data is None:
            return False
        lab.store_correlation(data, write_through=False)
        return True
    bitmap = lab.cache.load_bitmap(
        lab.trace.digest(), result_key(task, lab.config)
    )
    if bitmap is None:
        return False
    lab.store_correct(task, bitmap, write_through=False)
    return True
