"""Parallel simulation scheduler.

A full report simulates seven predictors plus the best-of-32 fixed
pattern sweep and the tagged-correlation collection over eight benchmark
traces -- 72 independent ``(benchmark, task)`` jobs with no shared
state.  This module fans them over a :class:`~concurrent.futures.\
ProcessPoolExecutor` and folds the results back into each
:class:`~repro.analysis.runner.Lab`'s memo dict, so downstream
experiments see exactly the state a serial run would have produced.

Determinism: every job is a pure function of ``(benchmark name, length,
run seed, config, task)``; workers regenerate the trace from those
inputs (a per-process LRU plus the shared disk cache make this cheap)
and the parent verifies the returned trace digest before folding, so
completion order and worker scheduling cannot change any result.

Observability crosses the process boundary the same way the results do:
each worker resets its per-process :data:`repro.obs.METRICS` registry
and :data:`repro.obs.TRACER` per job, and ships the metric delta plus
its span events back alongside the result; the parent folds both in the
same deterministic (sorted-benchmark, task-order) sequence it folds
bitmaps, so aggregated counters are independent of completion order and
``sum(worker deltas) == single-process counters`` for every work-unit
counter.

Worker count comes from ``--jobs``, the :data:`ENV_JOBS` environment
variable, or ``os.cpu_count()``; ``jobs <= 1`` short-circuits to the
plain in-process path with no executor, no pickling and no subprocesses.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Dict, Optional, Sequence, Tuple

from repro.analysis.cache import ResultCache, result_key
from repro.analysis.config import LabConfig
from repro.analysis.runner import Lab
from repro.correlation.tagging import collect_correlation_data
from repro.obs.metrics import METRICS
from repro.obs.tracing import TRACER, span
from repro.predictors.pattern import best_fixed_length_correct
from repro.trace.trace import Trace

#: Environment variable overriding the worker count.
ENV_JOBS = "REPRO_JOBS"

#: Pseudo-task name for the tagged-correlation collection.
CORRELATION_TASK = "correlation"

#: Tasks a full report needs, in deterministic fold order.
DEFAULT_TASKS: Tuple[str, ...] = (
    "gshare",
    "if_gshare",
    "pas",
    "if_pas",
    "loop",
    "block",
    "ideal_static",
    "fixed_best",
    CORRELATION_TASK,
)

#: Map task name -> LabConfig factory attribute (mirrors Lab._factories).
_FACTORY_ATTRS: Dict[str, str] = {
    "gshare": "gshare",
    "if_gshare": "if_gshare",
    "pas": "pas",
    "if_pas": "if_pas",
    "loop": "loop",
    "block": "block_pattern",
    "ideal_static": "ideal_static",
}


def default_jobs() -> int:
    """Worker count: ``$REPRO_JOBS`` if set and valid, else CPU count."""
    override = os.environ.get(ENV_JOBS)
    if override:
        try:
            return max(1, int(override))
        except ValueError:
            pass
    return os.cpu_count() or 1


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``--jobs`` value (None -> environment/CPU default)."""
    if jobs is None:
        return default_jobs()
    return max(1, int(jobs))


def compute_task(trace: Trace, config: LabConfig, task: str):
    """Compute one task's result on a trace (the single source of truth).

    Used by the serial priming path in-process and by
    :func:`_run_task` inside workers, so both paths produce bit-identical
    results and identical work-unit metrics (``sim.simulations`` /
    ``sim.correlation_collections``).
    """
    if task == CORRELATION_TASK:
        METRICS.inc("sim.correlation_collections")
        with span(
            "collect_correlation", length=len(trace)
        ), METRICS.timer("sim.seconds"):
            return collect_correlation_data(
                trace, window=config.collection_window
            )
    METRICS.inc("sim.simulations")
    with span(
        "simulate", predictor=task, length=len(trace)
    ), METRICS.timer("sim.seconds"):
        if task == "fixed_best":
            return best_fixed_length_correct(trace)
        factory = getattr(config, _FACTORY_ATTRS[task])
        return factory().simulate(trace)


def _run_task(job: tuple):
    """Execute one ``(benchmark, task)`` job in a worker process.

    Module-level so it pickles; regenerates the trace from the job spec
    (per-process LRU in ``load_benchmark`` plus the shared disk cache
    keep this a one-time cost per worker per benchmark).  Returns the
    job's metric delta and span events alongside the result so the
    parent can fold telemetry deterministically.
    """
    name, length, run_seed, config, task, cache_root, _window = job
    from repro.workloads.suite import load_benchmark

    METRICS.reset()
    TRACER.reset()
    start = time.perf_counter()
    with span("job", benchmark=name, task=task):
        cache = ResultCache(cache_root) if cache_root is not None else None
        trace = cache.load_trace(name, length, run_seed) if cache else None
        if trace is None:
            trace = load_benchmark(name, length, run_seed)
            if cache is not None:
                cache.store_trace(name, length, run_seed, trace)
        digest = trace.digest()
        result = compute_task(trace, config, task)
        if cache is not None:
            if task == CORRELATION_TASK:
                cache.store_correlation(digest, result)
            else:
                cache.store_bitmap(digest, result_key(task, config), result)
    duration = time.perf_counter() - start
    return (
        name, task, digest, result,
        METRICS.snapshot(), TRACER.chrome_events(), duration,
    )


def prime_labs(
    labs: Dict[str, Lab],
    run_seed: int = 12345,
    *,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    tasks: Sequence[str] = DEFAULT_TASKS,
) -> int:
    """Populate every lab's memos for ``tasks``, in parallel.

    Cached results are folded in directly; only misses are scheduled.
    After this returns, ``lab.correct(task)`` / ``lab.correlation_data()``
    are pure memo lookups for every requested task.

    Args:
        labs: Benchmark name -> Lab, as built by ``build_labs``.  The
            benchmark name must regenerate the lab's trace (standard
            suite labs; ad-hoc labs should skip priming).
        run_seed: The seed the labs' traces were generated with.
        jobs: Worker processes (None -> :func:`default_jobs`).
        cache: Shared result cache; workers write through to it.
        tasks: Task names to prime (subset of :data:`DEFAULT_TASKS`).

    Returns:
        The number of jobs executed (0 means everything was cached).
    """
    jobs = resolve_jobs(jobs)
    METRICS.gauge("parallel.workers", jobs)
    pending = []
    for name in sorted(labs):
        lab = labs[name]
        if cache is not None and lab.cache is None:
            lab.cache = cache
        for task in tasks:
            if lab.is_primed(task) or _fold_cached(lab, task):
                continue
            pending.append((name, task))

    if not pending:
        return 0

    if jobs <= 1:
        # Serial path: compute in place via the shared task kernel (one
        # source of truth with the worker path); Lab folds memo + cache.
        with span("prime_labs", jobs=1, pending=len(pending)):
            for name, task in pending:
                _prime_serial(labs[name], task)
        METRICS.inc("parallel.jobs_executed", len(pending))
        return len(pending)

    cache_root = str(cache.root) if cache is not None else None
    job_specs = {
        (name, task): (
            name,
            len(labs[name].trace),
            run_seed,
            labs[name].config,
            task,
            cache_root,
            labs[name].config.collection_window,
        )
        for name, task in pending
    }
    results = {}
    with span("prime_labs", jobs=jobs, pending=len(pending)):
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = {
                pool.submit(_run_task, spec): key
                for key, spec in job_specs.items()
            }
            for future in as_completed(futures):
                name, task, digest, result, delta, events, duration = (
                    future.result()
                )
                results[(name, task)] = (digest, result, delta, events, duration)

    # Fold in deterministic (sorted-name, task-order) order, verifying
    # the worker simulated the same trace the lab holds.  Metric deltas
    # and span events fold in the same order, so aggregate telemetry is
    # independent of worker scheduling.
    executed = 0
    for name, task in pending:
        digest, result, delta, events, duration = results[(name, task)]
        METRICS.merge(delta)
        METRICS.add_time("parallel.job_seconds", duration)
        TRACER.add_events(events)
        lab = labs[name]
        if digest != lab.trace.digest():
            # Worker regenerated a different trace (ad-hoc lab): discard
            # and let the lab compute lazily.
            continue
        # Workers already wrote the shared cache; skip the second write.
        write_through = cache is None
        if task == CORRELATION_TASK:
            lab.store_correlation(result, write_through=write_through)
        else:
            lab.store_correct(task, result, write_through=write_through)
        executed += 1
    METRICS.inc("parallel.jobs_executed", executed)
    return executed


def _fold_cached(lab: Lab, task: str) -> bool:
    """Fold a disk-cached result into the lab's memo; True on a hit."""
    if lab.cache is None:
        return False
    if task == CORRELATION_TASK:
        data = lab.cache.load_correlation(
            lab.trace.digest(), lab.config.collection_window
        )
        if data is None:
            return False
        lab.store_correlation(data, write_through=False)
        return True
    bitmap = lab.cache.load_bitmap(
        lab.trace.digest(), result_key(task, lab.config)
    )
    if bitmap is None:
        return False
    lab.store_correct(task, bitmap, write_through=False)
    return True


def _prime_serial(lab: Lab, task: str) -> None:
    """Compute one task in-process and fold it into the lab's memo.

    Goes through :func:`compute_task` (not ``lab.correct``) so the
    serial path counts exactly the work-unit metrics a worker would,
    and probes the disk cache exactly once per task (the scheduling
    loop's :func:`_fold_cached` already did).
    """
    result = compute_task(lab.trace, lab.config, task)
    if task == CORRELATION_TASK:
        lab.store_correlation(result)
    else:
        lab.store_correct(task, result)
