"""Parallel simulation scheduler.

A full report simulates seven predictors plus the best-of-32 fixed
pattern sweep and the tagged-correlation collection over eight benchmark
traces -- 72 independent ``(benchmark, task)`` jobs with no shared
state.  This module fans them over a :class:`~concurrent.futures.\
ProcessPoolExecutor` and folds the results back into each
:class:`~repro.analysis.runner.Lab`'s memo dict, so downstream
experiments see exactly the state a serial run would have produced.

Determinism: every job is a pure function of ``(benchmark name, length,
run seed, config, task)``; workers regenerate the trace from those
inputs (a per-process LRU plus the shared disk cache make this cheap)
and the parent verifies the returned trace digest before folding, so
completion order and worker scheduling cannot change any result.

Worker count comes from ``--jobs``, the :data:`ENV_JOBS` environment
variable, or ``os.cpu_count()``; ``jobs <= 1`` short-circuits to the
plain in-process path with no executor, no pickling and no subprocesses.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Dict, Optional, Sequence, Tuple

from repro.analysis.cache import ResultCache, result_key
from repro.analysis.config import LabConfig
from repro.analysis.runner import Lab
from repro.correlation.tagging import collect_correlation_data
from repro.predictors.pattern import best_fixed_length_correct

#: Environment variable overriding the worker count.
ENV_JOBS = "REPRO_JOBS"

#: Pseudo-task name for the tagged-correlation collection.
CORRELATION_TASK = "correlation"

#: Tasks a full report needs, in deterministic fold order.
DEFAULT_TASKS: Tuple[str, ...] = (
    "gshare",
    "if_gshare",
    "pas",
    "if_pas",
    "loop",
    "block",
    "ideal_static",
    "fixed_best",
    CORRELATION_TASK,
)

#: Map task name -> LabConfig factory attribute (mirrors Lab._factories).
_FACTORY_ATTRS: Dict[str, str] = {
    "gshare": "gshare",
    "if_gshare": "if_gshare",
    "pas": "pas",
    "if_pas": "if_pas",
    "loop": "loop",
    "block": "block_pattern",
    "ideal_static": "ideal_static",
}


def default_jobs() -> int:
    """Worker count: ``$REPRO_JOBS`` if set and valid, else CPU count."""
    override = os.environ.get(ENV_JOBS)
    if override:
        try:
            return max(1, int(override))
        except ValueError:
            pass
    return os.cpu_count() or 1


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``--jobs`` value (None -> environment/CPU default)."""
    if jobs is None:
        return default_jobs()
    return max(1, int(jobs))


def _run_task(job: tuple):
    """Execute one ``(benchmark, task)`` job in a worker process.

    Module-level so it pickles; regenerates the trace from the job spec
    (per-process LRU in ``load_benchmark`` plus the shared disk cache
    keep this a one-time cost per worker per benchmark).
    """
    name, length, run_seed, config, task, cache_root, collection_window = job
    from repro.workloads.suite import load_benchmark

    cache = ResultCache(cache_root) if cache_root is not None else None
    trace = cache.load_trace(name, length, run_seed) if cache else None
    if trace is None:
        trace = load_benchmark(name, length, run_seed)
        if cache is not None:
            cache.store_trace(name, length, run_seed, trace)
    digest = trace.digest()
    if task == CORRELATION_TASK:
        result = collect_correlation_data(trace, window=collection_window)
        if cache is not None:
            cache.store_correlation(digest, result)
    elif task == "fixed_best":
        result = best_fixed_length_correct(trace)
        if cache is not None:
            cache.store_bitmap(digest, result_key(task, config), result)
    else:
        factory = getattr(config, _FACTORY_ATTRS[task])
        result = factory().simulate(trace)
        if cache is not None:
            cache.store_bitmap(digest, result_key(task, config), result)
    return name, task, digest, result


def prime_labs(
    labs: Dict[str, Lab],
    run_seed: int = 12345,
    *,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    tasks: Sequence[str] = DEFAULT_TASKS,
) -> int:
    """Populate every lab's memos for ``tasks``, in parallel.

    Cached results are folded in directly; only misses are scheduled.
    After this returns, ``lab.correct(task)`` / ``lab.correlation_data()``
    are pure memo lookups for every requested task.

    Args:
        labs: Benchmark name -> Lab, as built by ``build_labs``.  The
            benchmark name must regenerate the lab's trace (standard
            suite labs; ad-hoc labs should skip priming).
        run_seed: The seed the labs' traces were generated with.
        jobs: Worker processes (None -> :func:`default_jobs`).
        cache: Shared result cache; workers write through to it.
        tasks: Task names to prime (subset of :data:`DEFAULT_TASKS`).

    Returns:
        The number of jobs executed (0 means everything was cached).
    """
    jobs = resolve_jobs(jobs)
    pending = []
    for name in sorted(labs):
        lab = labs[name]
        if cache is not None and lab.cache is None:
            lab.cache = cache
        for task in tasks:
            if lab.is_primed(task) or _fold_cached(lab, task):
                continue
            pending.append((name, task))

    if not pending:
        return 0

    if jobs <= 1:
        # Serial path: compute in place; Lab handles memo + disk cache.
        for name, task in pending:
            _prime_serial(labs[name], task)
        return len(pending)

    cache_root = str(cache.root) if cache is not None else None
    job_specs = {
        (name, task): (
            name,
            len(labs[name].trace),
            run_seed,
            labs[name].config,
            task,
            cache_root,
            labs[name].config.collection_window,
        )
        for name, task in pending
    }
    results = {}
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        futures = {
            pool.submit(_run_task, spec): key for key, spec in job_specs.items()
        }
        for future in as_completed(futures):
            name, task, digest, result = future.result()
            results[(name, task)] = (digest, result)

    # Fold in deterministic (sorted-name, task-order) order, verifying
    # the worker simulated the same trace the lab holds.
    executed = 0
    for name, task in pending:
        digest, result = results[(name, task)]
        lab = labs[name]
        if digest != lab.trace.digest():
            # Worker regenerated a different trace (ad-hoc lab): discard
            # and let the lab compute lazily.
            continue
        # Workers already wrote the shared cache; skip the second write.
        write_through = cache is None
        if task == CORRELATION_TASK:
            lab.store_correlation(result, write_through=write_through)
        else:
            lab.store_correct(task, result, write_through=write_through)
        executed += 1
    return executed


def _fold_cached(lab: Lab, task: str) -> bool:
    """Fold a disk-cached result into the lab's memo; True on a hit."""
    if lab.cache is None:
        return False
    if task == CORRELATION_TASK:
        data = lab.cache.load_correlation(
            lab.trace.digest(), lab.config.collection_window
        )
        if data is None:
            return False
        lab.store_correlation(data, write_through=False)
        return True
    bitmap = lab.cache.load_bitmap(
        lab.trace.digest(), result_key(task, lab.config)
    )
    if bitmap is None:
        return False
    lab.store_correct(task, bitmap, write_through=False)
    return True


def _prime_serial(lab: Lab, task: str) -> None:
    if task == CORRELATION_TASK:
        lab.correlation_data()
    else:
        lab.correct(task)
