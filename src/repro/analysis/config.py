"""Experiment-wide predictor configuration.

The paper simulates SPECint95 to completion (10-34M dynamic branches per
benchmark); this reproduction runs ~60-200k-branch synthetic traces,
roughly 1% of the paper's scale.  Structure sizes that are *rates* (how
often a pattern must recur before its counter trains) therefore scale
with the trace:

* The reference **gshare** keeps the paper's nominal 16-bit history and
  2^16-entry PHT; at 1% scale this configuration over-fragments, which is
  exactly the training-time effect the paper discusses, so it stays --
  interference and training losses land hardest on the gcc/go analogues,
  as in the paper.
* **Interference-free** predictors shorten their histories (global 6,
  per-address 8): with one PHT per branch, every distinct pattern must
  recur *for that branch*, and 1% of the paper's per-branch executions
  supports ~2^6 patterns, not 2^16.
* The **selective history** window stays at the paper's n=16 (the oracle
  picks at most 3 branches, so no training-density issue arises).

All sizes remain constructor arguments; this module only fixes the
defaults the experiments use.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Optional

from repro.correlation.selection import SelectionConfig
from repro.predictors.base import BranchPredictor
from repro.predictors.interference_free import (
    InterferenceFreeGshare,
    InterferenceFreePAs,
)
from repro.predictors.loop import LoopPredictor
from repro.predictors.pattern import BlockPatternPredictor
from repro.predictors.static_ import IdealStaticPredictor
from repro.predictors.twolevel import GsharePredictor, PAsPredictor


@dataclass(frozen=True)
class LabConfig:
    """Predictor sizing used by the experiment suite.

    Attributes:
        gshare_history_bits: History length of the reference gshare
            (paper nominal: 16).
        gshare_pht_bits: log2 PHT size of the reference gshare (16).
        if_gshare_history_bits: History length of interference-free
            gshare (scaled: 8).
        pas_history_bits: Per-address history length of PAs (6).
        pas_bht_bits: log2 BHT entries of PAs (12).
        if_pas_history_bits: History length of interference-free PAs (6).
        selective_window: History depth n for correlation analysis (paper:
            16; figure 5 sweeps 8-32).
        selective_top_k: Oracle candidate pool for pair/triple search.
        collection_window: Depth of the one-pass correlation collection
            (32 covers every window figure 5 needs).
    """

    gshare_history_bits: int = 16
    gshare_pht_bits: int = 16
    if_gshare_history_bits: int = 8
    pas_history_bits: int = 6
    pas_bht_bits: int = 12
    if_pas_history_bits: int = 6
    selective_window: int = 16
    selective_top_k: int = 12
    collection_window: int = 32

    # -- factories ---------------------------------------------------------

    def gshare(self) -> BranchPredictor:
        return GsharePredictor(self.gshare_history_bits, self.gshare_pht_bits)

    def if_gshare(self) -> BranchPredictor:
        return InterferenceFreeGshare(self.if_gshare_history_bits)

    def pas(self) -> BranchPredictor:
        return PAsPredictor(self.pas_history_bits, self.pas_bht_bits)

    def if_pas(self) -> BranchPredictor:
        return InterferenceFreePAs(self.if_pas_history_bits)

    def loop(self) -> BranchPredictor:
        return LoopPredictor()

    def block_pattern(self) -> BranchPredictor:
        return BlockPatternPredictor()

    def ideal_static(self) -> BranchPredictor:
        return IdealStaticPredictor()

    def selection_config(self, window: Optional[int] = None) -> SelectionConfig:
        return SelectionConfig(
            window=self.selective_window if window is None else window,
            top_k=self.selective_top_k,
        )


#: The configuration every experiment module uses unless told otherwise.
DEFAULT_CONFIG = LabConfig()


#: Which LabConfig fields each simulation task's result depends on.
#: Static predictors (loop, block, ideal_static, fixed_best) take no
#: sizing at all, so their entries are empty: their bitmaps are valid
#: under *every* configuration, which is what lets a sweep over, say,
#: gshare_history_bits share their cache entries across grid points.
TASK_CONFIG_FIELDS = {
    "gshare": ("gshare_history_bits", "gshare_pht_bits"),
    "if_gshare": ("if_gshare_history_bits",),
    "pas": ("pas_history_bits", "pas_bht_bits"),
    "if_pas": ("if_pas_history_bits",),
    "loop": (),
    "block": (),
    "ideal_static": (),
    "fixed_best": (),
    "correlation": ("collection_window",),
}

#: Fields a ``selective_{count}_{window}`` task depends on (the window
#: itself is part of the task name; the candidate pool and collection
#: depth come from the config).
_SELECTIVE_FIELDS = ("selective_top_k", "collection_window")


def task_config_fields(task: str):
    """The LabConfig fields ``task``'s result is a function of.

    Unknown task names fall back to *every* field -- conservative, so a
    predictor added without a projection entry can never alias another
    configuration's cache entry.
    """
    if task in TASK_CONFIG_FIELDS:
        return TASK_CONFIG_FIELDS[task]
    if task.startswith("selective_"):
        return _SELECTIVE_FIELDS
    return tuple(f.name for f in fields(LabConfig))


def task_config_key(task: str, config: "LabConfig") -> str:
    """Canonical ``field=value`` projection of ``config`` onto ``task``.

    This string is what the result cache keys bitmaps by: two configs
    that agree on the fields ``task`` actually reads produce the same
    key, so sweep points share every unaffected entry.
    """
    parts = ", ".join(
        f"{name}={getattr(config, name)}" for name in task_config_fields(task)
    )
    return f"{task}({parts})"
