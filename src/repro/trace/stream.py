"""Binary trace files (``.bpt`` -- *branch prediction trace*).

Two on-disk layouts share the extension (little-endian throughout):

``BPT1`` -- whole-trace columns, the original format:

========  =====================================================
offset    contents
========  =====================================================
0         magic ``b"BPT1"``
4         ``uint64`` n -- number of dynamic branches
12        n * ``uint64`` branch addresses
12+8n     n * ``uint64`` taken-target addresses
12+16n    ``ceil(n/8)`` bytes -- outcomes, bit-packed LSB-first
========  =====================================================

``BPT2`` -- chunk-indexed columns for streaming.  The trace is split
into fixed windows of ``chunk_branches`` branches (the final chunk may
be short); each chunk stores its own column triplet so a reader can
mmap the file and view any window without touching the rest:

========  =====================================================
offset    contents
========  =====================================================
0         magic ``b"BPT2"``
4         4 pad bytes (zero) -- aligns the u64 header fields
8         ``uint64`` n -- total dynamic branches
16        ``uint64`` chunk_branches -- window size (multiple of 8)
24        ``uint64`` num_chunks
32        ``uint64`` index_offset -- file offset of the chunk index
40        chunk payloads, each 8-byte aligned
...       chunk index: num_chunks * ``uint64`` payload offsets
========  =====================================================

Each chunk payload is ``pc`` (8c bytes), ``target`` (8c bytes), then
the bit-packed outcomes (LSB-first, ``ceil(c/8)`` bytes), padded to an
8-byte boundary so the next chunk's ``uint64`` columns stay aligned.
``chunk_branches`` is forced to a multiple of 8 so per-chunk bit
packing concatenates byte-identically with whole-trace packing -- that
is what makes :meth:`TraceStream.digest` equal :meth:`Trace.digest`.

Reading either format goes through ``mmap``: the address columns are
zero-copy views into the page cache, so replaying a multi-gigabyte
trace costs resident memory proportional to the window being simulated,
not the file.
"""

from __future__ import annotations

import mmap
import os
from typing import Callable, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.errors import IngestError
from repro.trace.trace import Trace

MAGIC = b"BPT1"
MAGIC2 = b"BPT2"

#: BPT2 fixed header size (magic + pad + four u64 fields).
HEADER2_SIZE = 40

#: Default streaming window: 64k branches is ~1.1 MB of chunk payload,
#: small enough that a full window plus predictor state stays cache-warm
#: and resident memory is flat in the trace length.
DEFAULT_CHUNK_BRANCHES = 65536

#: Environment variable overriding the engine's chunk size.
ENV_CHUNK_BRANCHES = "REPRO_CHUNK_BRANCHES"

PathLike = Union[str, os.PathLike]


class TraceFormatError(IngestError):
    """Raised when a trace file is malformed.

    Part of the :mod:`repro.errors` taxonomy (exit 2 / HTTP 400) via
    :class:`~repro.errors.IngestError`, which itself subclasses
    ``ValueError`` -- pre-taxonomy ``except ValueError`` callers keep
    working.  Messages carry ``path:line`` (text) or a byte offset
    (binary) so a malformed trace is a usage error, never a traceback.
    """

    code = "ingest.trace_format"


def normalize_chunk_branches(value: Optional[int]) -> int:
    """Clamp a chunk size to a positive multiple of 8 (None = default).

    Multiples of 8 keep every non-final chunk's packed outcome bits on
    byte boundaries, which both the on-disk layout and the streaming
    digest rely on.
    """
    if value is None:
        return DEFAULT_CHUNK_BRANCHES
    value = int(value)
    if value < 1:
        raise ValueError(f"chunk_branches must be >= 1, got {value}")
    return ((value + 7) // 8) * 8


def chunk_spans(num_branches: int, chunk_branches: int) -> List[Tuple[int, int]]:
    """The ``(start, stop)`` windows chunking ``num_branches`` branches."""
    chunk_branches = normalize_chunk_branches(chunk_branches)
    return [
        (start, min(start + chunk_branches, num_branches))
        for start in range(0, num_branches, chunk_branches)
    ]


def write_trace(trace: Trace, path: PathLike) -> None:
    """Serialise ``trace`` to ``path`` in ``BPT1`` format."""
    n = len(trace)
    with open(path, "wb") as fh:
        fh.write(MAGIC)
        fh.write(np.uint64(n).tobytes())
        fh.write(np.ascontiguousarray(trace.pc, dtype="<u8").tobytes())
        fh.write(np.ascontiguousarray(trace.target, dtype="<u8").tobytes())
        fh.write(np.packbits(trace.taken, bitorder="little").tobytes())


def _map_file(path: PathLike):
    """mmap ``path`` read-only; tiny/empty files fall back to bytes.

    numpy views built over the map keep it alive through their ``.base``
    reference, so callers can let the mapping fall out of scope with the
    arrays.
    """
    with open(path, "rb") as fh:
        size = os.fstat(fh.fileno()).st_size
        if size == 0:
            return b""
        return mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)


def read_trace(path: PathLike) -> Trace:
    """Deserialise a ``.bpt`` file (either layout) as one whole trace.

    The file is mapped, not read: the returned trace's address columns
    are views into the page cache, so loading a large BPT1 file does
    not copy the whole file through Python memory (only the outcome
    bits are unpacked into a fresh bool column).  BPT2 files are
    materialised by concatenating their chunks; use
    :meth:`TraceStream.open` to iterate them in bounded memory instead.
    """
    data = _map_file(path)
    if bytes(data[:4]) == MAGIC2:
        return TraceStream.open(path).whole()
    return _parse(data, source=str(path))


def _parse(data, source: str) -> Trace:
    # Parse columns directly out of the file buffer with np.frombuffer
    # offsets: zero copies until the Trace constructor, instead of one
    # bytes copy per column through io.BytesIO.read.
    magic = bytes(data[:4])
    if magic != MAGIC:
        raise TraceFormatError(f"{source}: bad magic {magic!r}, expected {MAGIC!r}")
    if len(data) < 12:
        raise TraceFormatError(f"{source}: truncated header")
    n = int(np.frombuffer(data, dtype="<u8", count=1, offset=4)[0])
    taken_nbytes = (n + 7) // 8
    if len(data) < 12 + 16 * n:
        raise TraceFormatError(f"{source}: truncated address columns")
    if len(data) < 12 + 16 * n + taken_nbytes:
        raise TraceFormatError(f"{source}: truncated outcome column")
    pc = np.frombuffer(data, dtype="<u8", count=n, offset=12)
    target = np.frombuffer(data, dtype="<u8", count=n, offset=12 + 8 * n)
    taken = np.unpackbits(
        np.frombuffer(data, dtype=np.uint8, count=taken_nbytes, offset=12 + 16 * n),
        bitorder="little",
        count=n,
    ).astype(bool)
    return Trace(pc, target, taken)


def _aligned(size: int) -> int:
    return ((size + 7) // 8) * 8


def _drop_pages(buffer, ranges: List[Tuple[int, int]]) -> None:
    """Tell the kernel a consumed byte range will not be re-read soon.

    Resident-set flatness is the streaming promise, and mmap'd pages
    count against RSS once touched -- without this, a sequential fold
    over a multi-gigabyte file ends the run with the whole file
    resident.  ``MADV_DONTNEED`` on a read-only file mapping just drops
    the clean pages; re-touching them refaults from the page cache, so
    this is purely a residency hint, never a correctness hazard.
    Silently a no-op where madvise is unavailable.
    """
    advise = getattr(buffer, "madvise", None)
    flag = getattr(mmap, "MADV_DONTNEED", None)
    if advise is None or flag is None:
        return
    page = mmap.PAGESIZE
    for start, stop in ranges:
        first = (start // page) * page
        if stop <= first:
            continue
        try:
            advise(flag, first, stop - first)
        except (OSError, ValueError, OverflowError):
            return


class BPT2Writer:
    """Streaming ``BPT2`` writer: append chunks, finalise on close.

    Chunks are written as they arrive -- nothing is buffered beyond the
    current file position -- so a producer can spill an arbitrarily long
    trace with resident memory bounded by one chunk.  Every chunk except
    the last must hold exactly ``chunk_branches`` branches; the header
    and chunk index are patched in on :meth:`close`.
    """

    def __init__(
        self, path: PathLike, chunk_branches: Optional[int] = None
    ) -> None:
        self.path = path
        self.chunk_branches = normalize_chunk_branches(chunk_branches)
        self._fh = open(path, "wb")
        self._fh.write(MAGIC2 + b"\x00" * (HEADER2_SIZE - 4))
        self._offsets: List[int] = []
        self._n = 0
        self._short_seen = False
        self._closed = False

    def append_chunk(self, pc, target, taken) -> None:
        """Write one window of columns (equal-length arrays)."""
        if self._closed:
            raise ValueError(f"{self.path}: writer already closed")
        pc = np.ascontiguousarray(pc, dtype="<u8")
        target = np.ascontiguousarray(target, dtype="<u8")
        taken = np.ascontiguousarray(taken, dtype=bool)
        count = len(pc)
        if not (count == len(target) == len(taken)):
            raise ValueError(
                "chunk columns must have equal length: "
                f"pc={len(pc)} target={len(target)} taken={len(taken)}"
            )
        if count == 0 or count > self.chunk_branches:
            raise ValueError(
                f"chunk length {count} outside (0, {self.chunk_branches}]"
            )
        if self._short_seen:
            raise ValueError(
                f"{self.path}: only the final chunk may be short "
                f"(previous chunk < {self.chunk_branches} branches)"
            )
        if count < self.chunk_branches:
            self._short_seen = True
        offset = self._fh.tell()
        self._fh.write(pc.tobytes())
        self._fh.write(target.tobytes())
        packed = np.packbits(taken, bitorder="little").tobytes()
        self._fh.write(packed)
        payload = 16 * count + len(packed)
        self._fh.write(b"\x00" * (_aligned(payload) - payload))
        self._offsets.append(offset)
        self._n += count

    def close(self) -> None:
        """Write the chunk index and patch the header (idempotent)."""
        if self._closed:
            return
        index_offset = self._fh.tell()
        self._fh.write(np.asarray(self._offsets, dtype="<u8").tobytes())
        self._fh.seek(8)
        self._fh.write(
            np.asarray(
                [self._n, self.chunk_branches, len(self._offsets), index_offset],
                dtype="<u8",
            ).tobytes()
        )
        self._fh.close()
        self._closed = True

    def __enter__(self) -> "BPT2Writer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self._closed = True
            self._fh.close()


def write_trace_chunked(
    trace: Trace, path: PathLike, chunk_branches: Optional[int] = None
) -> None:
    """Serialise ``trace`` to ``path`` in ``BPT2`` format."""
    with BPT2Writer(path, chunk_branches) as writer:
        for start, stop in chunk_spans(len(trace), writer.chunk_branches):
            writer.append_chunk(
                trace.pc[start:stop],
                trace.target[start:stop],
                trace.taken[start:stop],
            )


class TraceStream:
    """Fixed-window access to a trace without materialising it whole.

    A stream yields :class:`Trace` chunks whose address columns are
    zero-copy views -- into an mmap'd file (:meth:`open`) or into an
    in-memory trace's columns (:meth:`from_trace`).  Chunk boundaries
    always fall on multiples of 8 branches, so the streaming
    :meth:`digest` is bit-identical to :meth:`Trace.digest` of the
    whole trace, and chunked simulation via the carried-state kernels
    reproduces whole-trace results exactly.
    """

    def __init__(
        self,
        *,
        num_branches: int,
        chunk_branches: int,
        getter: Callable[[int], Trace],
        source: str,
        releaser: Optional[Callable[[int], None]] = None,
    ) -> None:
        self._n = num_branches
        self._chunk_branches = chunk_branches
        self._spans = chunk_spans(num_branches, chunk_branches)
        self._getter = getter
        self._releaser = releaser
        self.source = source
        self._digest_cache: Optional[str] = None

    # -- construction ------------------------------------------------------

    @classmethod
    def open(
        cls, path: PathLike, chunk_branches: Optional[int] = None
    ) -> "TraceStream":
        """Open a ``.bpt`` file (either layout) as a stream.

        For ``BPT2`` files the on-disk chunking wins and
        ``chunk_branches`` is ignored; for ``BPT1`` files the stream
        synthesises windows of ``chunk_branches`` (default
        :data:`DEFAULT_CHUNK_BRANCHES`) over the whole-file columns.
        """
        data = _map_file(path)
        magic = bytes(data[:4])
        if magic == MAGIC2:
            return cls._open_bpt2(data, str(path))
        if magic == MAGIC:
            return cls._open_bpt1(data, str(path), chunk_branches)
        raise TraceFormatError(
            f"{path}: bad magic {magic!r}, expected {MAGIC!r} or {MAGIC2!r}"
        )

    @classmethod
    def _open_bpt1(
        cls, data, source: str, chunk_branches: Optional[int]
    ) -> "TraceStream":
        # Validate the layout once (cheap -- header arithmetic only),
        # then serve windows as slices of the whole-file column views.
        if len(data) < 12:
            raise TraceFormatError(f"{source}: truncated header")
        n = int(np.frombuffer(data, dtype="<u8", count=1, offset=4)[0])
        taken_nbytes = (n + 7) // 8
        if len(data) < 12 + 16 * n:
            raise TraceFormatError(f"{source}: truncated address columns")
        if len(data) < 12 + 16 * n + taken_nbytes:
            raise TraceFormatError(f"{source}: truncated outcome column")
        pc = np.frombuffer(data, dtype="<u8", count=n, offset=12)
        target = np.frombuffer(data, dtype="<u8", count=n, offset=12 + 8 * n)
        packed = np.frombuffer(
            data, dtype=np.uint8, count=taken_nbytes, offset=12 + 16 * n
        )
        size = normalize_chunk_branches(chunk_branches)

        def getter(index: int) -> Trace:
            start = index * size
            stop = min(start + size, n)
            # Chunk starts are multiples of 8, so the window's packed
            # outcome bits begin on a byte boundary.
            taken = np.unpackbits(
                packed[start // 8 : (stop + 7) // 8],
                bitorder="little",
                count=stop - start,
            ).astype(bool)
            return Trace(pc[start:stop], target[start:stop], taken)

        def releaser(index: int) -> None:
            start = index * size
            stop = min(start + size, n)
            _drop_pages(data, [
                (12 + 8 * start, 12 + 8 * stop),
                (12 + 8 * n + 8 * start, 12 + 8 * n + 8 * stop),
                (12 + 16 * n + start // 8, 12 + 16 * n + (stop + 7) // 8),
            ])

        return cls(
            num_branches=n,
            chunk_branches=size,
            getter=getter,
            source=source,
            releaser=releaser if isinstance(data, mmap.mmap) else None,
        )

    @classmethod
    def _open_bpt2(cls, data, source: str) -> "TraceStream":
        if len(data) < HEADER2_SIZE:
            raise TraceFormatError(f"{source}: truncated header")
        n, size, num_chunks, index_offset = (
            int(value)
            for value in np.frombuffer(data, dtype="<u8", count=4, offset=8)
        )
        if size < 1 or (num_chunks > 1 and size % 8):
            raise TraceFormatError(
                f"{source}: chunk_branches {size} is not a positive "
                "multiple of 8"
            )
        expected_chunks = len(chunk_spans(n, size)) if n else 0
        if num_chunks != expected_chunks:
            raise TraceFormatError(
                f"{source}: {num_chunks} chunks indexed, "
                f"{expected_chunks} implied by n={n}"
            )
        if len(data) < index_offset + 8 * num_chunks:
            raise TraceFormatError(f"{source}: truncated chunk index")
        offsets = np.frombuffer(
            data, dtype="<u8", count=num_chunks, offset=index_offset
        )
        spans = chunk_spans(n, size) if n else []
        for (start, stop), offset in zip(spans, offsets.tolist()):
            count = stop - start
            payload = 16 * count + (count + 7) // 8
            if offset < HEADER2_SIZE or offset + payload > index_offset:
                raise TraceFormatError(
                    f"{source}: chunk at offset {offset} overruns the "
                    "payload region"
                )

        def getter(index: int) -> Trace:
            start, stop = spans[index]
            count = stop - start
            offset = int(offsets[index])
            pc = np.frombuffer(data, dtype="<u8", count=count, offset=offset)
            target = np.frombuffer(
                data, dtype="<u8", count=count, offset=offset + 8 * count
            )
            taken = np.unpackbits(
                np.frombuffer(
                    data,
                    dtype=np.uint8,
                    count=(count + 7) // 8,
                    offset=offset + 16 * count,
                ),
                bitorder="little",
                count=count,
            ).astype(bool)
            return Trace(pc, target, taken)

        def releaser(index: int) -> None:
            start, stop = spans[index]
            count = stop - start
            offset = int(offsets[index])
            _drop_pages(
                data, [(offset, offset + 16 * count + (count + 7) // 8)]
            )

        return cls(
            num_branches=n,
            chunk_branches=size,
            getter=getter,
            source=source,
            releaser=releaser if isinstance(data, mmap.mmap) else None,
        )

    @classmethod
    def from_trace(
        cls, trace: Trace, chunk_branches: Optional[int] = None
    ) -> "TraceStream":
        """Stream over an in-memory trace (chunks are zero-copy slices)."""
        size = normalize_chunk_branches(chunk_branches)
        n = len(trace)

        def getter(index: int) -> Trace:
            start = index * size
            return trace[start : min(start + size, n)]

        stream = cls(
            num_branches=n,
            chunk_branches=size,
            getter=getter,
            source="<memory>",
        )
        # The whole trace is on hand; reuse its memoised digest.
        stream._digest_cache = trace.digest()
        return stream

    # -- access ------------------------------------------------------------

    def __len__(self) -> int:
        return self._n

    @property
    def num_branches(self) -> int:
        return self._n

    @property
    def chunk_branches(self) -> int:
        return self._chunk_branches

    @property
    def num_chunks(self) -> int:
        return len(self._spans)

    def spans(self) -> List[Tuple[int, int]]:
        """The ``(start, stop)`` window of every chunk, in order."""
        return list(self._spans)

    def chunk(self, index: int) -> Trace:
        """The ``index``-th window as a :class:`Trace` view."""
        if not 0 <= index < len(self._spans):
            raise IndexError(
                f"chunk {index} out of range ({len(self._spans)} chunks)"
            )
        return self._getter(index)

    def chunks(self) -> Iterator[Trace]:
        """Iterate the windows in trace order.

        For file-backed streams, a window's pages are released (madvise)
        once iteration moves past it, keeping a sequential fold's
        resident set at one window regardless of file size.  Released
        data stays readable -- re-access refaults from the page cache.
        """
        for index in range(len(self._spans)):
            yield self._getter(index)
            if self._releaser is not None:
                self._releaser(index)

    def whole(self) -> Trace:
        """Materialise the full trace (copies; defeats streaming)."""
        if not self._spans:
            return Trace.empty()
        parts = list(self.chunks())
        return Trace(
            np.concatenate([part.pc for part in parts]),
            np.concatenate([part.target for part in parts]),
            np.concatenate([part.taken for part in parts]),
        )

    def digest(self) -> str:
        """Streaming :meth:`Trace.digest` -- identical hex for identical
        columns, computed one window at a time.

        Three ordered passes (pc, target, packed outcomes) reproduce the
        whole-trace hash byte stream; non-final chunks are multiples of
        8 branches, so per-chunk ``np.packbits`` concatenation matches
        whole-column packing exactly.
        """
        if self._digest_cache is None:
            import hashlib

            h = hashlib.blake2b(digest_size=16)
            h.update(self._n.to_bytes(8, "little"))
            for chunk in self.chunks():
                h.update(chunk.pc.tobytes())
            for chunk in self.chunks():
                h.update(chunk.target.tobytes())
            for chunk in self.chunks():
                h.update(np.packbits(chunk.taken).tobytes())
            self._digest_cache = h.hexdigest()
        return self._digest_cache


def write_text_trace(trace: Trace, path: PathLike) -> None:
    """Serialise a trace as text: one ``pc target taken`` line per branch.

    The interop format: trivially produced by any tracer (pin tool,
    QEMU plugin, a printf in a simulator).  Addresses are hex, the
    outcome is ``T``/``N``.  ``#``-prefixed lines are comments.
    """
    chunk = 8192  # lines per write: one syscall per chunk, not per line
    with open(path, "w") as fh:
        fh.write("# repro text trace: pc target taken(T/N)\n")
        pcs = trace.pc.tolist()
        targets = trace.target.tolist()
        takens = trace.taken.tolist()
        for start in range(0, len(pcs), chunk):
            end = min(start + chunk, len(pcs))
            fh.write(
                "".join(
                    f"{pcs[i]:#x} {targets[i]:#x} {'T' if takens[i] else 'N'}\n"
                    for i in range(start, end)
                )
            )


def read_text_trace(path: PathLike) -> Trace:
    """Parse the text format written by :func:`write_text_trace`.

    Accepts decimal or hex addresses and ``T/N``, ``1/0``,
    ``taken/not-taken`` outcome spellings; blank and ``#`` lines are
    skipped.
    """
    from repro.trace.trace import TraceBuilder

    taken_words = {"t": True, "1": True, "taken": True,
                   "n": False, "0": False, "not-taken": False}
    builder = TraceBuilder()
    with open(path) as fh:
        for line_number, line in enumerate(fh, start=1):
            text = line.strip()
            if not text or text.startswith("#"):
                continue
            parts = text.split()
            if len(parts) != 3:
                raise TraceFormatError(
                    f"{path}:{line_number}: expected 'pc target taken', "
                    f"got {text!r}"
                )
            try:
                pc = int(parts[0], 0)
                target = int(parts[1], 0)
            except ValueError:
                raise TraceFormatError(
                    f"{path}:{line_number}: bad address in {text!r}"
                ) from None
            outcome = taken_words.get(parts[2].lower())
            if outcome is None:
                raise TraceFormatError(
                    f"{path}:{line_number}: bad outcome {parts[2]!r}"
                )
            builder.append(pc, target, outcome)
    return builder.build()
