"""Binary trace files (``.bpt`` -- *branch prediction trace*).

Layout (little-endian):

========  =====================================================
offset    contents
========  =====================================================
0         magic ``b"BPT1"``
4         ``uint64`` n -- number of dynamic branches
12        n * ``uint64`` branch addresses
12+8n     n * ``uint64`` taken-target addresses
12+16n    ``ceil(n/8)`` bytes -- outcomes, bit-packed LSB-first
========  =====================================================

The format exists so that generated workload traces can be produced once
and replayed by many experiments (the paper simulated SPECint95 *to
completion* once per configuration; we memoise instead, but files also let
users bring their own traces).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Union

import numpy as np

from repro.trace.trace import Trace

MAGIC = b"BPT1"

PathLike = Union[str, os.PathLike]


class TraceFormatError(ValueError):
    """Raised when a trace file is malformed."""


def write_trace(trace: Trace, path: PathLike) -> None:
    """Serialise ``trace`` to ``path`` in ``.bpt`` format."""
    n = len(trace)
    with open(path, "wb") as fh:
        fh.write(MAGIC)
        fh.write(np.uint64(n).tobytes())
        fh.write(np.ascontiguousarray(trace.pc, dtype="<u8").tobytes())
        fh.write(np.ascontiguousarray(trace.target, dtype="<u8").tobytes())
        fh.write(np.packbits(trace.taken, bitorder="little").tobytes())


def read_trace(path: PathLike) -> Trace:
    """Deserialise a ``.bpt`` file written by :func:`write_trace`."""
    data = Path(path).read_bytes()
    return _parse(data, source=str(path))


def _parse(data: bytes, source: str) -> Trace:
    # Parse columns directly out of the file buffer with np.frombuffer
    # offsets: zero copies until the Trace constructor, instead of one
    # bytes copy per column through io.BytesIO.read.
    magic = data[:4]
    if magic != MAGIC:
        raise TraceFormatError(f"{source}: bad magic {magic!r}, expected {MAGIC!r}")
    if len(data) < 12:
        raise TraceFormatError(f"{source}: truncated header")
    n = int(np.frombuffer(data, dtype="<u8", count=1, offset=4)[0])
    taken_nbytes = (n + 7) // 8
    if len(data) < 12 + 16 * n:
        raise TraceFormatError(f"{source}: truncated address columns")
    if len(data) < 12 + 16 * n + taken_nbytes:
        raise TraceFormatError(f"{source}: truncated outcome column")
    pc = np.frombuffer(data, dtype="<u8", count=n, offset=12)
    target = np.frombuffer(data, dtype="<u8", count=n, offset=12 + 8 * n)
    taken = np.unpackbits(
        np.frombuffer(data, dtype=np.uint8, count=taken_nbytes, offset=12 + 16 * n),
        bitorder="little",
        count=n,
    ).astype(bool)
    return Trace(pc, target, taken)


def write_text_trace(trace: Trace, path: PathLike) -> None:
    """Serialise a trace as text: one ``pc target taken`` line per branch.

    The interop format: trivially produced by any tracer (pin tool,
    QEMU plugin, a printf in a simulator).  Addresses are hex, the
    outcome is ``T``/``N``.  ``#``-prefixed lines are comments.
    """
    chunk = 8192  # lines per write: one syscall per chunk, not per line
    with open(path, "w") as fh:
        fh.write("# repro text trace: pc target taken(T/N)\n")
        pcs = trace.pc.tolist()
        targets = trace.target.tolist()
        takens = trace.taken.tolist()
        for start in range(0, len(pcs), chunk):
            end = min(start + chunk, len(pcs))
            fh.write(
                "".join(
                    f"{pcs[i]:#x} {targets[i]:#x} {'T' if takens[i] else 'N'}\n"
                    for i in range(start, end)
                )
            )


def read_text_trace(path: PathLike) -> Trace:
    """Parse the text format written by :func:`write_text_trace`.

    Accepts decimal or hex addresses and ``T/N``, ``1/0``,
    ``taken/not-taken`` outcome spellings; blank and ``#`` lines are
    skipped.
    """
    from repro.trace.trace import TraceBuilder

    taken_words = {"t": True, "1": True, "taken": True,
                   "n": False, "0": False, "not-taken": False}
    builder = TraceBuilder()
    with open(path) as fh:
        for line_number, line in enumerate(fh, start=1):
            text = line.strip()
            if not text or text.startswith("#"):
                continue
            parts = text.split()
            if len(parts) != 3:
                raise TraceFormatError(
                    f"{path}:{line_number}: expected 'pc target taken', "
                    f"got {text!r}"
                )
            try:
                pc = int(parts[0], 0)
                target = int(parts[1], 0)
            except ValueError:
                raise TraceFormatError(
                    f"{path}:{line_number}: bad address in {text!r}"
                ) from None
            outcome = taken_words.get(parts[2].lower())
            if outcome is None:
                raise TraceFormatError(
                    f"{path}:{line_number}: bad outcome {parts[2]!r}"
                )
            builder.append(pc, target, outcome)
    return builder.build()
