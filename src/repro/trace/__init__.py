"""Branch-trace substrate.

The paper drives every experiment from traces of dynamic conditional
branches (SPECint95 run to completion).  This package provides the trace
data model used throughout the reproduction:

* :class:`~repro.trace.record.BranchRecord` -- a single dynamic branch.
* :class:`~repro.trace.trace.Trace` -- an immutable, columnar
  (numpy-backed) sequence of dynamic branches.
* :class:`~repro.trace.trace.TraceBuilder` -- incremental construction.
* :func:`~repro.trace.stream.write_trace` /
  :func:`~repro.trace.stream.read_trace` -- compact binary ``.bpt`` files.
* :class:`~repro.trace.stats.TraceStatistics` -- summary statistics
  (drives Table 1).
"""

from repro.trace.record import BranchRecord
from repro.trace.stats import TraceStatistics, compute_statistics
from repro.trace.stream import (
    read_text_trace,
    read_trace,
    write_text_trace,
    write_trace,
)
from repro.trace.trace import Trace, TraceBuilder

__all__ = [
    "BranchRecord",
    "Trace",
    "TraceBuilder",
    "TraceStatistics",
    "compute_statistics",
    "read_text_trace",
    "read_trace",
    "write_text_trace",
    "write_trace",
]
