"""Foreign-trace ingestion: validate, normalise, spill to ``BPT2``.

The importer boundary of the source-agnostic trace substrate.  Three
foreign formats flow in; one canonical artefact flows out:

``text``
    CBP-style text, one branch per line: ``pc taken`` or
    ``pc target taken``.  Addresses decimal or hex; outcomes ``T/N``,
    ``1/0``, ``taken/not-taken``; blank and ``#`` lines skipped.  When
    the two-field spelling omits the target, a deterministic synthetic
    target (``pc + 4``) is recorded so the columns stay complete.
``binary``
    Headerless packed records, 9 bytes each, little-endian: ``uint64``
    pc then one outcome byte (0 or 1).  The file size must be an exact
    multiple of the record size.
``bpt``
    Already-native ``BPT1``/``BPT2`` files; validated and digested in
    place.

Everything is streamed: parsers yield bounded column batches which are
re-windowed into exact ``chunk_branches`` chunks and appended straight
to a :class:`~repro.trace.stream.BPT2Writer`, so ingesting a
multi-gigabyte trace holds one window resident -- the same promise the
generator's spill path makes.  The resulting ``.bpt`` then serves the
whole engine for free: bounded-memory folds (PC011), the
content-addressed cache, shared-memory chunk shipping, and the serve
API all consume it exactly like a synthetic spill.

Every rejection raises :class:`~repro.errors.IngestError` (exit 2 /
HTTP 400) with the offending ``path:line`` or byte offset in the
message -- a malformed trace is a usage error, never a traceback.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

import numpy as np

from repro.errors import IngestError
from repro.trace.stream import (
    MAGIC,
    MAGIC2,
    BPT2Writer,
    PathLike,
    TraceStream,
    normalize_chunk_branches,
    read_trace,
)
from repro.trace.trace import Trace

#: Declared/detected foreign formats.
INGEST_FORMATS = ("text", "binary", "bpt")

#: ``binary`` record layout: uint64 pc + one outcome byte.
BINARY_RECORD = np.dtype([("pc", "<u8"), ("taken", "u1")])
BINARY_RECORD_SIZE = BINARY_RECORD.itemsize

#: Synthetic taken-target stride for formats that omit targets.
_SYNTHETIC_TARGET_STRIDE = 4

#: Column batch size parsers aim for (records per yielded batch).
_BATCH_RECORDS = 8192

_TAKEN_WORDS = {
    "t": True, "1": True, "taken": True,
    "n": False, "0": False, "not-taken": False,
}

#: Column batch type: (pc, target, taken) arrays of one common length.
Batch = Tuple[np.ndarray, np.ndarray, np.ndarray]


@dataclass(frozen=True)
class IngestResult:
    """What one ingested trace is, where it landed, and its identity.

    Attributes:
        name: Benchmark-style name (defaults to the source file stem).
        source_path: The foreign file that was read.
        path: The canonical artefact -- the ``.bpt`` spill for foreign
            formats, the original file for already-native ``bpt``.
        format: The detected/declared source format.
        branches: Dynamic branch count.
        digest: Canonical trace content digest
            (:meth:`repro.trace.trace.Trace.digest`), computed from the
            spilled columns -- bit-identical to the digest of the same
            trace loaded whole.
    """

    name: str
    source_path: str
    path: str
    format: str
    branches: int
    digest: str

    def to_entry(self):
        """The :class:`~repro.spec.TraceEntry` this result pins."""
        from repro.spec import TraceEntry

        return TraceEntry(
            name=self.name,
            digest=self.digest,
            path=self.path,
            format="bpt",
            branches=self.branches,
        )


def detect_format(path: PathLike) -> str:
    """Sniff a trace file's format from magic bytes, then extension."""
    try:
        with open(path, "rb") as fh:
            head = fh.read(4)
    except OSError as error:
        raise IngestError(f"{path}: cannot read trace file ({error})") from None
    if head in (MAGIC, MAGIC2):
        return "bpt"
    extension = os.path.splitext(str(path))[1].lower()
    if extension in (".bin", ".pct"):
        return "binary"
    return "text"


def _parse_text(path: PathLike) -> Iterator[Batch]:
    """Stream the text format as column batches, validating every line."""
    pcs: list = []
    targets: list = []
    takens: list = []
    try:
        fh = open(path, "r", errors="replace")
    except OSError as error:
        raise IngestError(f"{path}: cannot read trace file ({error})") from None
    with fh:
        for line_number, line in enumerate(fh, start=1):
            text = line.strip()
            if not text or text.startswith("#"):
                continue
            parts = text.split()
            if len(parts) == 2:
                pc_text, outcome_text = parts
                target_text = None
            elif len(parts) == 3:
                pc_text, target_text, outcome_text = parts
            else:
                raise IngestError(
                    f"{path}:{line_number}: expected 'pc taken' or "
                    f"'pc target taken', got {text!r}"
                )
            try:
                pc = int(pc_text, 0)
                target = (
                    pc + _SYNTHETIC_TARGET_STRIDE
                    if target_text is None
                    else int(target_text, 0)
                )
            except ValueError:
                raise IngestError(
                    f"{path}:{line_number}: bad address in {text!r}"
                ) from None
            if not (0 <= pc < 2**64 and 0 <= target < 2**64):
                raise IngestError(
                    f"{path}:{line_number}: address out of uint64 range "
                    f"in {text!r}"
                )
            outcome = _TAKEN_WORDS.get(outcome_text.lower())
            if outcome is None:
                raise IngestError(
                    f"{path}:{line_number}: bad outcome {outcome_text!r} "
                    f"(want T/N, 1/0, taken/not-taken)"
                )
            pcs.append(pc)
            targets.append(target)
            takens.append(outcome)
            if len(pcs) >= _BATCH_RECORDS:
                yield (
                    np.asarray(pcs, dtype="<u8"),
                    np.asarray(targets, dtype="<u8"),
                    np.asarray(takens, dtype=bool),
                )
                pcs, targets, takens = [], [], []
    if pcs:
        yield (
            np.asarray(pcs, dtype="<u8"),
            np.asarray(targets, dtype="<u8"),
            np.asarray(takens, dtype=bool),
        )


def _parse_binary(path: PathLike) -> Iterator[Batch]:
    """Stream the packed binary format, validating record framing."""
    block_bytes = BINARY_RECORD_SIZE * _BATCH_RECORDS
    offset = 0
    try:
        fh = open(path, "rb")
    except OSError as error:
        raise IngestError(f"{path}: cannot read trace file ({error})") from None
    with fh:
        while True:
            block = fh.read(block_bytes)
            if not block:
                break
            if len(block) % BINARY_RECORD_SIZE:
                raise IngestError(
                    f"{path}: truncated record at byte offset "
                    f"{offset + len(block) - len(block) % BINARY_RECORD_SIZE} "
                    f"(file size must be a multiple of {BINARY_RECORD_SIZE})"
                )
            records = np.frombuffer(block, dtype=BINARY_RECORD)
            outcomes = records["taken"]
            bad = np.nonzero(outcomes > 1)[0]
            if bad.size:
                where = offset + int(bad[0]) * BINARY_RECORD_SIZE + 8
                raise IngestError(
                    f"{path}: bad outcome byte {int(outcomes[bad[0]])} at "
                    f"byte offset {where} (want 0 or 1)"
                )
            pc = records["pc"].astype("<u8")
            yield (
                pc,
                pc + np.uint64(_SYNTHETIC_TARGET_STRIDE),
                outcomes.astype(bool),
            )
            offset += len(block)


def _rechunk(batches: Iterator[Batch], chunk_branches: int) -> Iterator[Batch]:
    """Re-window arbitrary-size batches into exact writer chunks.

    Every yielded chunk holds exactly ``chunk_branches`` branches except
    the final one -- the framing :class:`BPT2Writer` requires.
    """
    held: list = []
    held_count = 0
    for batch in batches:
        held.append(batch)
        held_count += len(batch[0])
        while held_count >= chunk_branches:
            pc = np.concatenate([part[0] for part in held])
            target = np.concatenate([part[1] for part in held])
            taken = np.concatenate([part[2] for part in held])
            yield pc[:chunk_branches], target[:chunk_branches], taken[:chunk_branches]
            held = [
                (pc[chunk_branches:], target[chunk_branches:], taken[chunk_branches:])
            ]
            held_count -= chunk_branches
    if held_count:
        yield (
            np.concatenate([part[0] for part in held]),
            np.concatenate([part[1] for part in held]),
            np.concatenate([part[2] for part in held]),
        )


def _batches(path: PathLike, fmt: str) -> Iterator[Batch]:
    if fmt == "text":
        return _parse_text(path)
    if fmt == "binary":
        return _parse_binary(path)
    raise IngestError(
        f"{path}: unknown trace format {fmt!r}; choose from "
        f"{', '.join(INGEST_FORMATS)}"
    )


def ingest_file(
    source: PathLike,
    out_path: Optional[PathLike] = None,
    *,
    name: Optional[str] = None,
    format: Optional[str] = None,
    chunk_branches: Optional[int] = None,
) -> IngestResult:
    """Validate one foreign trace and spill it to chunked ``BPT2``.

    Args:
        source: The foreign trace file.
        out_path: Where the ``.bpt`` spill lands (default:
            ``<source>.bpt``; ignored for already-native ``bpt`` input,
            which is validated and digested in place).
        name: Benchmark-style name (default: the source file stem).
        format: Declared format; None sniffs via :func:`detect_format`.
        chunk_branches: Spill window (None = engine default).

    Returns:
        An :class:`IngestResult` whose ``digest`` is the canonical
        trace content digest -- the identity an
        :class:`~repro.spec.ImportedSource` entry pins.

    Raises:
        IngestError: On an unreadable file, a malformed line or record
            (with its location), or an empty trace.
    """
    source = os.fspath(source)
    fmt = format or detect_format(source)
    trace_name = name or os.path.splitext(os.path.basename(source))[0]
    if not trace_name:
        raise IngestError(f"{source}: cannot derive a trace name; pass one")

    if fmt == "bpt":
        stream = _open_stream(source)
        if len(stream) == 0:
            raise IngestError(f"{source}: trace contains no branches")
        return IngestResult(
            name=trace_name,
            source_path=str(source),
            path=str(source),
            format=fmt,
            branches=len(stream),
            digest=stream.digest(),
        )

    chunk = normalize_chunk_branches(chunk_branches)
    destination = os.fspath(
        out_path if out_path is not None else f"{source}.bpt"
    )
    written = 0
    try:
        with BPT2Writer(destination, chunk_branches=chunk) as writer:
            for pc, target, taken in _rechunk(_batches(source, fmt), chunk):
                writer.append_chunk(pc, target, taken)
                written += len(pc)
    except BaseException:
        # A rejected source must not leave a partial spill behind.
        try:
            os.unlink(destination)
        except OSError:
            pass
        raise
    if written == 0:
        os.unlink(destination)
        raise IngestError(f"{source}: trace contains no branches")
    stream = _open_stream(destination)
    return IngestResult(
        name=trace_name,
        source_path=str(source),
        path=destination,
        format=fmt,
        branches=written,
        digest=stream.digest(),
    )


def _open_stream(path: PathLike) -> TraceStream:
    try:
        return TraceStream.open(path)
    except (OSError, ValueError) as error:
        raise IngestError(f"{path}: {error}") from None


def load_imported_trace(
    path: PathLike,
    *,
    format: Optional[str] = None,
    expected_digest: Optional[str] = None,
) -> Trace:
    """Load a foreign or native trace whole, verifying its identity.

    The executor's entry point for :class:`~repro.spec.ImportedSource`
    entries: whatever the on-disk format, the returned columns hash to
    the canonical trace digest, and a mismatch against
    ``expected_digest`` -- stale file, wrong path, silent edit -- is an
    :class:`IngestError`, not a silently wrong simulation.
    """
    path = os.fspath(path)
    fmt = format if format not in (None, "bpt2", "bpt1") else None
    fmt = fmt or detect_format(path)
    if fmt == "bpt":
        try:
            trace = read_trace(path)
        except (OSError, ValueError) as error:
            raise IngestError(f"{path}: {error}") from None
    else:
        parts = list(_batches(path, fmt))
        if not parts:
            raise IngestError(f"{path}: trace contains no branches")
        trace = Trace(
            np.concatenate([part[0] for part in parts]),
            np.concatenate([part[1] for part in parts]),
            np.concatenate([part[2] for part in parts]),
        )
    if len(trace) == 0:
        raise IngestError(f"{path}: trace contains no branches")
    if expected_digest and trace.digest() != expected_digest:
        raise IngestError(
            f"{path}: trace digest {trace.digest()} does not match the "
            f"spec's declared digest {expected_digest} (stale or edited "
            f"file?)"
        )
    return trace


__all__ = [
    "BINARY_RECORD",
    "BINARY_RECORD_SIZE",
    "INGEST_FORMATS",
    "IngestResult",
    "detect_format",
    "ingest_file",
    "load_imported_trace",
]
