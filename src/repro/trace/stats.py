"""Trace summary statistics (Table 1 and the bias analyses of sections 4-5).

The paper repeatedly reports what fraction of "ideal-static-best" branches
are more than 99% biased (88% in fig 6, 83% in fig 7, 92% in fig 8), so the
bias machinery lives here and is reused by :mod:`repro.classify`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.trace.trace import Trace


@dataclass(frozen=True)
class TraceStatistics:
    """Aggregate statistics for one trace.

    Attributes:
        num_dynamic: Total dynamic conditional branches (Table 1 column).
        num_static: Distinct static branches.
        taken_rate: Fraction of dynamic branches taken.
        backward_rate: Fraction of dynamic branches whose target precedes
            the branch (loop-closing).
        ideal_static_accuracy: Accuracy of the paper's "ideal" static
            predictor -- per-branch majority direction over the whole run.
        biased_99_dynamic_fraction: Fraction of *dynamic* branches whose
            static branch is >99% biased toward one direction.
        per_branch_bias: Map pc -> max(taken-rate, not-taken-rate).
    """

    num_dynamic: int
    num_static: int
    taken_rate: float
    backward_rate: float
    ideal_static_accuracy: float
    biased_99_dynamic_fraction: float
    per_branch_bias: Dict[int, float] = field(repr=False)


def per_branch_bias(trace: Trace) -> Dict[int, float]:
    """Per-static-branch bias: majority-direction frequency in [0.5, 1]."""
    biases: Dict[int, float] = {}
    for pc, outcomes in trace.outcomes_by_pc().items():
        rate = float(outcomes.mean())
        biases[pc] = max(rate, 1.0 - rate)
    return biases


def ideal_static_correct(trace: Trace) -> np.ndarray:
    """Correctness bitmap of the ideal static predictor.

    The ideal static predictor statically predicts, for every branch, the
    direction that branch takes most often *during this run* (section 4.1).
    Ties are resolved toward taken; only the count, not the choice, matters.
    """
    correct = np.zeros(len(trace), dtype=bool)
    for pc, indices in trace.indices_by_pc().items():
        outcomes = trace.taken[indices]
        majority_taken = outcomes.mean() >= 0.5
        correct[indices] = outcomes == majority_taken
    return correct


def biased_fraction(trace: Trace, threshold: float = 0.99) -> float:
    """Fraction of dynamic branches whose static branch exceeds ``threshold`` bias."""
    if not len(trace):
        return 0.0
    biases = per_branch_bias(trace)
    counts = trace.dynamic_counts()
    biased = sum(counts[pc] for pc, b in biases.items() if b > threshold)
    return biased / len(trace)


def compute_statistics(trace: Trace) -> TraceStatistics:
    """Compute the full :class:`TraceStatistics` for ``trace``."""
    if not len(trace):
        return TraceStatistics(
            num_dynamic=0,
            num_static=0,
            taken_rate=0.0,
            backward_rate=0.0,
            ideal_static_accuracy=0.0,
            biased_99_dynamic_fraction=0.0,
            per_branch_bias={},
        )
    return TraceStatistics(
        num_dynamic=len(trace),
        num_static=trace.num_static_branches(),
        taken_rate=trace.taken_rate(),
        backward_rate=float(trace.is_backward.mean()),
        ideal_static_accuracy=float(ideal_static_correct(trace).mean()),
        biased_99_dynamic_fraction=biased_fraction(trace),
        per_branch_bias=per_branch_bias(trace),
    )
