"""A single dynamic conditional branch."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BranchRecord:
    """One dynamic execution of a conditional branch.

    Attributes:
        pc: Address of the branch instruction.  All experiments identify
            *static* branches by this address, exactly as the paper's
            trace-driven simulator does.
        target: Address the branch jumps to when taken.  Only the
            *direction* ``target < pc`` matters to the reproduction (it
            defines backward branches, used by the iteration-tagging
            scheme of section 3.2 and by the BTFNT static predictor).
        taken: Outcome of this dynamic instance.
    """

    pc: int
    target: int
    taken: bool

    @property
    def is_backward(self) -> bool:
        """True when the branch jumps to a lower address (loop-closing)."""
        return self.target < self.pc

    def __post_init__(self) -> None:
        if self.pc < 0 or self.target < 0:
            raise ValueError(
                f"branch addresses must be non-negative, got pc={self.pc} "
                f"target={self.target}"
            )
