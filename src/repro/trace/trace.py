"""Columnar branch traces.

A :class:`Trace` stores a complete dynamic branch stream as three parallel
numpy arrays (``pc``, ``target``, ``taken``).  Column storage keeps a
200k-branch trace under 4 MB and lets the analysis layer vectorise
whole-trace computations (ideal-static accuracy, fixed-``k`` pattern
accuracy, bias statistics) instead of looping in Python -- the main
mitigation for pure-Python simulation speed.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Sequence, Union

import numpy as np

from repro.trace.record import BranchRecord

PC_DTYPE = np.uint64
TAKEN_DTYPE = np.bool_


class Trace:
    """An immutable sequence of dynamic conditional branches.

    Construct from columns (zero-copy where possible) or via
    :class:`TraceBuilder` / :meth:`Trace.from_records`.
    """

    __slots__ = ("_pc", "_target", "_taken", "_pc_index_cache", "_digest_cache")

    def __init__(
        self,
        pc: Sequence[int],
        target: Sequence[int],
        taken: Sequence[bool],
    ) -> None:
        pc_arr = np.ascontiguousarray(pc, dtype=PC_DTYPE)
        target_arr = np.ascontiguousarray(target, dtype=PC_DTYPE)
        taken_arr = np.ascontiguousarray(taken, dtype=TAKEN_DTYPE)
        if not (len(pc_arr) == len(target_arr) == len(taken_arr)):
            raise ValueError(
                "trace columns must have equal length: "
                f"pc={len(pc_arr)} target={len(target_arr)} taken={len(taken_arr)}"
            )
        self._pc = pc_arr
        self._target = target_arr
        self._taken = taken_arr
        self._pc_index_cache: Union[Dict[int, np.ndarray], None] = None
        self._digest_cache: Union[str, None] = None
        for col in (self._pc, self._target, self._taken):
            col.setflags(write=False)

    # -- construction ----------------------------------------------------

    @classmethod
    def from_records(cls, records: Sequence[BranchRecord]) -> "Trace":
        """Build a trace from an iterable of :class:`BranchRecord`."""
        builder = TraceBuilder()
        for record in records:
            builder.append(record.pc, record.target, record.taken)
        return builder.build()

    @classmethod
    def empty(cls) -> "Trace":
        return cls([], [], [])

    # -- columns ----------------------------------------------------------

    @property
    def pc(self) -> np.ndarray:
        """Branch addresses, shape ``(len(self),)``, dtype uint64."""
        return self._pc

    @property
    def target(self) -> np.ndarray:
        """Taken-target addresses, shape ``(len(self),)``, dtype uint64."""
        return self._target

    @property
    def taken(self) -> np.ndarray:
        """Outcomes, shape ``(len(self),)``, dtype bool."""
        return self._taken

    @property
    def is_backward(self) -> np.ndarray:
        """Boolean mask of backward (loop-closing) branches."""
        return self._target < self._pc

    # -- sequence protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._pc)

    def __getitem__(self, index: Union[int, slice]) -> Union[BranchRecord, "Trace"]:
        if isinstance(index, slice):
            return Trace(self._pc[index], self._target[index], self._taken[index])
        i = int(index)
        return BranchRecord(
            pc=int(self._pc[i]),
            target=int(self._target[i]),
            taken=bool(self._taken[i]),
        )

    def __iter__(self) -> Iterator[BranchRecord]:
        for i in range(len(self)):
            yield self[i]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Trace):
            return NotImplemented
        return (
            np.array_equal(self._pc, other._pc)
            and np.array_equal(self._target, other._target)
            and np.array_equal(self._taken, other._taken)
        )

    def __hash__(self) -> int:  # immutable, but arrays are unhashable
        return hash((len(self), self._pc.tobytes()[:64], self._taken.tobytes()[:64]))

    def __repr__(self) -> str:
        return (
            f"Trace(len={len(self)}, static={self.num_static_branches()}, "
            f"taken_rate={self.taken_rate():.3f})"
        )

    def digest(self) -> str:
        """Content digest of the trace columns (hex, memoised).

        Two traces with identical columns share a digest regardless of how
        they were built; the result cache uses this as the trace half of
        every content-addressed key.
        """
        if self._digest_cache is None:
            import hashlib

            h = hashlib.blake2b(digest_size=16)
            h.update(len(self).to_bytes(8, "little"))
            h.update(self._pc.tobytes())
            h.update(self._target.tobytes())
            h.update(np.packbits(self._taken).tobytes())
            self._digest_cache = h.hexdigest()
        return self._digest_cache

    # -- derived views ------------------------------------------------------

    def num_static_branches(self) -> int:
        """Number of distinct branch addresses in the trace."""
        return len(np.unique(self._pc)) if len(self) else 0

    def taken_rate(self) -> float:
        """Fraction of dynamic branches that were taken."""
        return float(self._taken.mean()) if len(self) else 0.0

    def static_pcs(self) -> np.ndarray:
        """Sorted array of distinct static branch addresses."""
        return np.unique(self._pc)

    def indices_by_pc(self) -> Dict[int, np.ndarray]:
        """Map each static branch address to its dynamic-instance indices.

        The result is cached: several analyses (per-address predictors,
        classification, percentile curves) group the same trace repeatedly.
        """
        if self._pc_index_cache is None:
            if not len(self):
                self._pc_index_cache = {}
                return self._pc_index_cache
            order = np.argsort(self._pc, kind="stable")
            sorted_pc = self._pc[order]
            boundaries = np.nonzero(np.diff(sorted_pc))[0] + 1
            groups = np.split(order, boundaries)
            self._pc_index_cache = {
                int(sorted_pc[start]): group
                for start, group in zip(
                    np.concatenate(([0], boundaries)), groups
                )
            }
        return self._pc_index_cache

    def outcomes_by_pc(self) -> Dict[int, np.ndarray]:
        """Map each static branch address to its in-order outcome sequence."""
        return {
            pc: self._taken[indices] for pc, indices in self.indices_by_pc().items()
        }

    def dynamic_counts(self) -> Dict[int, int]:
        """Map each static branch address to its dynamic execution count."""
        return {pc: len(idx) for pc, idx in self.indices_by_pc().items()}

    def concat(self, other: "Trace") -> "Trace":
        """Return a new trace holding ``self`` followed by ``other``."""
        return Trace(
            np.concatenate([self._pc, other._pc]),
            np.concatenate([self._target, other._target]),
            np.concatenate([self._taken, other._taken]),
        )


class TraceBuilder:
    """Incremental trace construction with amortised append.

    The workload interpreter emits one branch per executed conditional; the
    builder buffers into Python lists and converts to columnar numpy storage
    once at :meth:`build`.
    """

    def __init__(self) -> None:
        self._pc: List[int] = []
        self._target: List[int] = []
        self._taken: List[bool] = []

    def append(self, pc: int, target: int, taken: bool) -> None:
        """Record one dynamic branch."""
        if pc < 0 or target < 0:
            raise ValueError("branch addresses must be non-negative")
        self._pc.append(pc)
        self._target.append(target)
        self._taken.append(bool(taken))

    def append_record(self, record: BranchRecord) -> None:
        self.append(record.pc, record.target, record.taken)

    def __len__(self) -> int:
        return len(self._pc)

    def build(self) -> Trace:
        """Freeze the buffered branches into an immutable :class:`Trace`."""
        return Trace(self._pc, self._target, self._taken)


class ChunkedTraceBuilder:
    """Bounded-memory trace construction: flush fixed windows to a sink.

    Where :class:`TraceBuilder` buffers the whole trace in Python lists
    (hundreds of bytes per branch), this builder fills preallocated
    numpy columns of ``chunk_branches`` entries and hands each full
    window to ``sink(pc, target, taken)`` -- typically a
    :class:`~repro.trace.stream.BPT2Writer` spilling to disk.  Resident
    memory is one window regardless of trace length.

    The sink must consume the arrays before returning (they are reused
    for the next window).
    """

    def __init__(
        self,
        sink: Callable[[np.ndarray, np.ndarray, np.ndarray], None],
        chunk_branches: int,
    ) -> None:
        if chunk_branches < 1:
            raise ValueError(
                f"chunk_branches must be >= 1, got {chunk_branches}"
            )
        self._sink = sink
        self._chunk_branches = int(chunk_branches)
        self._pc = np.empty(self._chunk_branches, dtype=PC_DTYPE)
        self._target = np.empty(self._chunk_branches, dtype=PC_DTYPE)
        self._taken = np.empty(self._chunk_branches, dtype=TAKEN_DTYPE)
        self._fill = 0
        self._flushed = 0

    def append(self, pc: int, target: int, taken: bool) -> None:
        """Record one dynamic branch, flushing on a full window."""
        if pc < 0 or target < 0:
            raise ValueError("branch addresses must be non-negative")
        i = self._fill
        self._pc[i] = pc
        self._target[i] = target
        self._taken[i] = bool(taken)
        self._fill = i + 1
        if self._fill == self._chunk_branches:
            self._flush()

    def __len__(self) -> int:
        return self._flushed + self._fill

    def _flush(self) -> None:
        self._sink(
            self._pc[: self._fill],
            self._target[: self._fill],
            self._taken[: self._fill],
        )
        self._flushed += self._fill
        self._fill = 0

    def finish(self) -> int:
        """Flush any partial final window; returns the total count."""
        if self._fill:
            self._flush()
        return self._flushed
